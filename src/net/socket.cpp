#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace stale::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail("fcntl(O_NONBLOCK)");
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    throw std::invalid_argument("not an IPv4 address: '" + host + "'");
  }
  return addr;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    fail("getsockname");
  }
  return ntohs(addr.sin_port);
}

}  // namespace

std::string Endpoint::to_string() const {
  return host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size()) {
    throw std::invalid_argument("endpoint must be host:port, got '" + text +
                                "'");
  }
  Endpoint endpoint;
  endpoint.host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  std::size_t used = 0;
  long port = 0;
  try {
    port = std::stol(port_text, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad port in endpoint '" + text + "'");
  }
  if (used != port_text.size() || port < 0 || port > 65535) {
    throw std::invalid_argument("bad port in endpoint '" + text + "'");
  }
  endpoint.port = static_cast<std::uint16_t>(port);
  return endpoint;
}

void Fd::reset(int fd) {
  if (fd_ >= 0) close(fd_);
  fd_ = fd;
}

Fd tcp_listen(const std::string& host, std::uint16_t port,
              std::uint16_t* bound_port) {
  Fd fd(socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket(TCP)");
  const int one = 1;
  setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const sockaddr_in addr = make_addr(host, port);
  if (bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    fail("bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (listen(fd.get(), 128) < 0) fail("listen");
  set_nonblocking(fd.get());
  if (bound_port != nullptr) *bound_port = local_port(fd.get());
  return fd;
}

Fd tcp_connect(const Endpoint& endpoint) {
  Fd fd(socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket(TCP)");
  set_nonblocking(fd.get());
  set_nodelay(fd.get());
  const sockaddr_in addr = make_addr(endpoint.host, endpoint.port);
  if (connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
              sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    fail("connect(" + endpoint.to_string() + ")");
  }
  return fd;
}

Fd tcp_accept(int listen_fd) {
  const int fd = accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return Fd();
  set_nonblocking(fd);
  set_nodelay(fd);
  return Fd(fd);
}

Fd udp_bind(const std::string& host, std::uint16_t port,
            std::uint16_t* bound_port) {
  Fd fd(socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) fail("socket(UDP)");
  const sockaddr_in addr = make_addr(host, port);
  if (bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    fail("bind(udp " + host + ":" + std::to_string(port) + ")");
  }
  set_nonblocking(fd.get());
  if (bound_port != nullptr) *bound_port = local_port(fd.get());
  return fd;
}

Fd udp_socket() {
  Fd fd(socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) fail("socket(UDP)");
  set_nonblocking(fd.get());
  return fd;
}

void udp_send(int fd, const Endpoint& endpoint, const std::string& payload) {
  const sockaddr_in addr = make_addr(endpoint.host, endpoint.port);
  sendto(fd, payload.data(), payload.size(), 0,
         reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
}

}  // namespace stale::net
