#include "net/record.h"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "sim/stats.h"

namespace stale::net {

void TraceV2Recorder::note_arrival(std::uint64_t gid, double now) {
  by_gid_.emplace(gid, jobs_.size());
  jobs_.push_back(Job{now, -1.0, -1.0});
}

void TraceV2Recorder::note_load(double now, int server, int queue_len) {
  loads_.push_back(workload::LoadEvent{now, server, queue_len});
}

void TraceV2Recorder::note_done(std::uint64_t gid, double now,
                                double service) {
  const auto it = by_gid_.find(gid);
  if (it == by_gid_.end()) return;  // straggler for a job we never saw
  Job& job = jobs_[it->second];
  if (job.done >= 0.0) return;  // duplicate DONE
  job.done = now;
  job.service = service;
  ++completed_;
}

std::vector<workload::TraceRecord> TraceV2Recorder::completed_arrivals()
    const {
  std::vector<workload::TraceRecord> records;
  records.reserve(jobs_.size());
  dropped_ = 0;
  double origin = -1.0;
  for (const Job& job : jobs_) {
    if (job.done < 0.0) {
      ++dropped_;
      continue;
    }
    if (origin < 0.0) origin = job.arrival;
    // A backend too old to report service times yields size 1.0, the trace
    // format's default.
    const double size = job.service >= 0.0 ? job.service : 1.0;
    records.push_back(workload::TraceRecord{job.arrival - origin, size});
  }
  return records;
}

std::vector<workload::LoadEvent> TraceV2Recorder::normalized_loads() const {
  double origin = -1.0;
  for (const Job& job : jobs_) {
    if (job.done < 0.0) continue;
    origin = job.arrival;
    break;
  }
  std::vector<workload::LoadEvent> events;
  events.reserve(loads_.size());
  for (const workload::LoadEvent& event : loads_) {
    // Reports before the first completed arrival predate the replay clock.
    if (origin < 0.0 || event.time < origin) continue;
    events.push_back(
        workload::LoadEvent{event.time - origin, event.server,
                            event.queue_len});
  }
  return events;
}

std::uint64_t TraceV2Recorder::write_trace(
    const std::string& dir, workload::ReplayManifest manifest) const {
  const std::vector<workload::TraceRecord> records = completed_arrivals();
  const std::uint64_t skipped = dropped_;
  manifest.arrivals = records.size();
  manifest.duration = records.empty() ? 0.0 : records.back().arrival;

  const auto open = [&dir](const char* name) {
    std::ofstream out(dir + "/" + name);
    if (!out) {
      throw std::runtime_error("trace-v2: cannot write '" + dir + "/" + name +
                               "'");
    }
    return out;
  };
  {
    std::ofstream out = open(workload::kManifestFile);
    workload::write_manifest(out, manifest);
  }
  {
    std::ofstream out = open(workload::kArrivalsFile);
    workload::write_arrivals(out, records);
  }
  {
    std::ofstream out = open(workload::kLoadsFile);
    workload::write_loads(out, normalized_loads());
  }
  return skipped;
}

obs::ReplayMetrics TraceV2Recorder::live_metrics(
    const std::vector<std::uint64_t>& per_backend_dispatched) const {
  obs::ReplayMetrics metrics;
  metrics.source = "live";

  std::vector<const Job*> done;
  done.reserve(jobs_.size());
  for (const Job& job : jobs_) {
    if (job.done >= 0.0) done.push_back(&job);
  }
  // Mirror the sim driver's warmup convention (first quarter of the jobs by
  // arrival order) so the two sides measure the same steady-state window.
  const std::size_t warmup = done.size() / 4;
  std::vector<double> responses;
  responses.reserve(done.size() - warmup);
  double span_begin = 0.0;
  double span_end = 0.0;
  double sum = 0.0;
  for (std::size_t i = warmup; i < done.size(); ++i) {
    const Job& job = *done[i];
    if (responses.empty()) span_begin = job.arrival;
    span_end = std::max(span_end, job.done);
    responses.push_back(job.done - job.arrival);
    sum += job.done - job.arrival;
  }
  metrics.jobs = responses.size();
  metrics.duration = responses.empty() ? 0.0 : span_end - span_begin;
  if (!responses.empty()) {
    metrics.mean_response = sum / static_cast<double>(responses.size());
    std::sort(responses.begin(), responses.end());
    metrics.p50_response = sim::percentile_sorted(responses, 0.50);
    metrics.p90_response = sim::percentile_sorted(responses, 0.90);
    metrics.p99_response = sim::percentile_sorted(responses, 0.99);
  }

  std::uint64_t total = 0;
  for (const std::uint64_t count : per_backend_dispatched) total += count;
  metrics.dispatch_share.reserve(per_backend_dispatched.size());
  for (const std::uint64_t count : per_backend_dispatched) {
    metrics.dispatch_share.push_back(
        total == 0 ? 0.0
                   : static_cast<double>(count) / static_cast<double>(total));
  }
  return metrics;
}

}  // namespace stale::net
