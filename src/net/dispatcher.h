// The live dispatcher: a single-threaded event-loop TCP load balancer that
// drives the repo's policy:: implementations with a *real* stale bulletin
// board (net/net_board.h).
//
// Data path: clients connect over TCP and send `JOB <id>` lines; per job the
// dispatcher assembles a policy::DispatchContext from the NetBoard (stale
// loads + information age + a windowed arrival-rate estimate), asks the
// configured SelectionPolicy for a backend, and forwards the job over a
// persistent TCP connection to that backend. The backend's `DONE` reply is
// routed back to the originating client.
//
// Control path: backends register and report load over UDP (HELLO/LOAD, see
// net/protocol.h). The optional fault spec injects report loss and extra
// report delay on this path — the live analogue of the simulator's
// RefreshFaults — so the "stale + lossy information" experiments run against
// physical packets.
//
// Health path (optional, DispatcherOptions::health): the same
// health::Membership state machine the simulator's churn trials use, here
// fed by physical report recency. Silent backends are quarantined and then
// evicted, evicted ones are probed with exponential backoff and readmitted
// through probation on a fresh HELLO, timed-out or orphaned jobs are
// re-dispatched to a different backend, and when candidate coverage drops
// below the configured threshold the dispatcher degrades to a fallback
// policy until the cluster recovers.
//
// Observability: with a TraceSink attached, the dispatcher emits the same
// on_decision / on_dispatch / on_departure / on_board_refresh /
// on_refresh_fault events as the simulator's driver, timestamped with
// net::mono_now(). A recorded live trace therefore drops straight into
// obs/probe.h and obs/herd.h — that is how the loopback CI test shows the
// paper's herd effect on real sockets.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "check/sync.h"
#include "check/thread_annotations.h"
#include "core/rate_estimator.h"
#include "fault/fault_spec.h"
#include "health/health_config.h"
#include "health/membership.h"
#include "net/buffer.h"
#include "net/event_loop.h"
#include "net/net_board.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/trace_sink.h"
#include "policy/policy_factory.h"
#include "sim/rng.h"

namespace stale::net {

class TraceV2Recorder;

struct DispatcherOptions {
  std::string host = "127.0.0.1";
  std::uint16_t tcp_port = 0;  // client-facing; 0 = ephemeral
  std::uint16_t udp_port = 0;  // backend control plane; 0 = ephemeral

  int num_backends = 0;  // registrations to wait for before READY

  std::string policy_spec = "basic_li";
  UpdateSchedule schedule = UpdateSchedule::kPeriodic;
  double update_period = 1.0;  // T (phase length LI interprets against)

  // Arrival-rate estimation window for DispatchContext::lambda_total;
  // <= 0 picks 4 * update_period. Applies to the default windowed estimator
  // only (see estimator_spec).
  double rate_window = 0.0;

  // Which lambda-hat feeds the LI policies (--estimator):
  //   windowed[:W]   sliding-window count/W (the default; W from rate_window)
  //   ewma:TAU       exponential moving average with time constant TAU
  //   cema[:A[:B]]   bias-corrected bucketed CEMA (alpha A, bucket width B;
  //                  defaults 0.1 and update_period/2)
  //   fixed:RATE     a constant — the paper's "operator tells the dispatcher
  //                  lambda" baseline, deliberately blind to load shifts
  std::string estimator_spec = "windowed";

  double duration = 0.0;  // seconds; <= 0 = run until stopped
  std::uint64_t seed = 1;

  // Fault injection on the UDP report path: update_loss drops each incoming
  // LOAD report, update_extra_delay holds surviving reports back by an
  // exponential extra delay before they reach the board. Parsed with
  // fault::FaultSpec so the CLI flag is shared with the simulator.
  fault::FaultSpec faults;

  // Dynamic membership (src/health/): when health.enabled() the dispatcher
  // runs a per-backend liveness state machine fed by HELLO/LOAD/DONE recency.
  // Backends silent past suspect_timeout are quarantined out of the policy's
  // candidate set; past evict_timeout they are evicted (connection torn down,
  // in-flight jobs re-dispatched) and probed with exponential backoff until a
  // fresh HELLO re-registers them through probation. While candidate coverage
  // sits below health.coverage_threshold the dispatcher selects with
  // health.fallback_policy instead of policy_spec (degraded mode).
  health::HealthConfig health;

  // Data-path failure detection (requires health.enabled()): a dispatched job
  // unanswered for dispatch_timeout seconds marks its backend failed and is
  // re-dispatched to a different backend — at most max_redispatch re-sends
  // per job (timeouts and connection losses combined) before the client gets
  // an ERR. <= 0 disables the per-job timer; connection-loss re-dispatch
  // stays active whenever health is enabled.
  double dispatch_timeout = 0.0;
  int max_redispatch = 2;

  // Status lines ("LISTENING", "READY") for humans and harnesses; nullable.
  std::ostream* status_out = nullptr;

  obs::TraceSink* trace = nullptr;

  // Trace-v2 recording (--record): arrival/LOAD/DONE events flow into the
  // recorder during the run; the owner writes the directory afterwards.
  TraceV2Recorder* record = nullptr;
};

struct DispatcherStats {
  std::uint64_t jobs_received = 0;
  std::uint64_t jobs_dispatched = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_rejected = 0;  // no registered backend to send to
  std::uint64_t jobs_orphaned = 0;  // backend connection died mid-job
  std::uint64_t reports_received = 0;
  std::uint64_t reports_dropped = 0;  // injected loss
  std::uint64_t reports_delayed = 0;  // injected delay
  std::uint64_t hellos_received = 0;
  // Health-subsystem counters (all zero when health is disabled).
  std::uint64_t dispatch_timeouts = 0;   // per-job timers that fired
  std::uint64_t jobs_redispatched = 0;   // re-sent after timeout/conn loss
  std::uint64_t backend_evictions = 0;   // membership transitions to dead
  std::uint64_t backend_rejoins = 0;     // probation completed back to alive
  std::uint64_t degraded_entries = 0;    // coverage dropped below threshold
  std::vector<std::uint64_t> per_backend_dispatched;
  double started_at = 0.0;
  double stopped_at = 0.0;
};

class Dispatcher {
 public:
  // Binds both sockets and resolves the policy; throws on bad configuration.
  explicit Dispatcher(const DispatcherOptions& options);

  std::uint16_t tcp_port() const { return tcp_port_; }
  std::uint16_t udp_port() const { return udp_port_; }

  // Serves until the duration elapses or `stop_flag` goes true.
  void run(const std::atomic<bool>* stop_flag = nullptr);

  // Read-side accessors for the owning thread (before run() starts or after
  // it returns); asserting the serial capability documents that contract.
  const DispatcherStats& stats() const {
    loop_serial_.assert_held();
    return stats_;
  }
  int registered_backends() const {
    loop_serial_.assert_held();
    return registered_;
  }

 private:
  struct BackendConn {
    bool registered = false;
    Endpoint endpoint;  // data-plane address learned from HELLO
    Fd fd;
    LineBuffer in;
    WriteBuffer out;
  };

  struct ClientConn {
    Fd fd;
    LineBuffer in;
    WriteBuffer out;
  };

  struct InFlightJob {
    int client_fd = -1;  // -1 after the client hung up
    std::uint64_t client_id = 0;
    int backend = 0;
    int attempts = 0;                 // re-dispatches already consumed
    std::uint64_t timeout_timer = 0;  // 0 = no per-job timer armed
  };

  // An in-flight liveness probe of a dead backend: a bare TCP connect to its
  // last-known data endpoint, watched for the connect outcome.
  struct ProbeConn {
    int index = -1;
    Fd fd;
  };

  void on_udp_readable() STALE_REQUIRES(loop_serial_);
  void handle_datagram(const std::string& payload, const std::string& from) STALE_REQUIRES(loop_serial_);
  void register_backend(const HelloMsg& hello, const std::string& from_host) STALE_REQUIRES(loop_serial_);
  void accept_clients() STALE_REQUIRES(loop_serial_);
  void on_client_readable(int fd) STALE_REQUIRES(loop_serial_);
  void on_backend_readable(int index) STALE_REQUIRES(loop_serial_);
  void handle_client_line(int fd, const std::string& line) STALE_REQUIRES(loop_serial_);
  void handle_backend_line(int index, const std::string& line) STALE_REQUIRES(loop_serial_);
  void dispatch_job(int client_fd, std::uint64_t client_id) STALE_REQUIRES(loop_serial_);
  // One (re-)send of a job: attempt 0 is the original dispatch, later
  // attempts re-route around `avoid` (the backend that just failed it).
  void dispatch_attempt(int client_fd, std::uint64_t client_id, int attempts,
                        int avoid) STALE_REQUIRES(loop_serial_);
  void on_job_timeout(std::uint64_t gid) STALE_REQUIRES(loop_serial_);
  void health_tick() STALE_REQUIRES(loop_serial_);
  void probe_backend(int index) STALE_REQUIRES(loop_serial_);
  void on_probe_event(int fd, std::uint32_t events) STALE_REQUIRES(loop_serial_);
  void build_live_mask() STALE_REQUIRES(loop_serial_);
  void apply_report(const LoadMsg& msg) STALE_REQUIRES(loop_serial_);
  void drop_client(int fd) STALE_REQUIRES(loop_serial_);
  // `observed_failure` feeds the membership state machine; re-registration
  // replaces a connection without declaring the backend dead.
  void drop_backend(int index, bool observed_failure = true) STALE_REQUIRES(loop_serial_);
  void send_to_client(int fd, const std::string& bytes) STALE_REQUIRES(loop_serial_);
  void send_to_backend(int index, const std::string& bytes) STALE_REQUIRES(loop_serial_);
  void flush_conn(int fd, WriteBuffer* out, bool want_read) STALE_REQUIRES(loop_serial_);
  void status(const std::string& line);

  // Configuration and sockets: written in the constructor, immutable after
  // (the event loop reads them, nothing races). They sit above the serial
  // capability per the T2 convention: unguarded members before the lock.
  DispatcherOptions options_;
  EventLoop loop_;
  Fd listen_fd_;
  Fd udp_fd_;
  std::uint16_t tcp_port_ = 0;
  std::uint16_t udp_port_ = 0;
  double health_tick_period_ = 0.0;

  // The dispatcher is single-threaded by contract, not by locking: every
  // member below is touched only from the event-loop thread (the one that
  // constructed the dispatcher and calls run()). loop_serial_ is the
  // thread-confinement pseudo-capability making that contract checkable —
  // each handler requires it, each event-loop callback asserts it, and
  // clang's -Wthread-safety verifies no unannotated path touches the state.
  check::Serial loop_serial_;

  policy::PolicyPtr policy_ STALE_PT_GUARDED_BY(loop_serial_);
  // Degraded mode; null if health off.
  policy::PolicyPtr fallback_policy_ STALE_PT_GUARDED_BY(loop_serial_);
  NetBoard board_ STALE_GUARDED_BY(loop_serial_);
  // rng_: policy tie-breaks / subset sampling. fault_rng_: report loss and
  // delay draws. Both are split streams of the configured seed.
  sim::Rng rng_ STALE_GUARDED_BY(loop_serial_);
  sim::Rng fault_rng_ STALE_GUARDED_BY(loop_serial_);
  core::RateEstimatorPtr rate_ STALE_PT_GUARDED_BY(loop_serial_);

  std::vector<BackendConn> backends_ STALE_GUARDED_BY(loop_serial_);
  int registered_ STALE_GUARDED_BY(loop_serial_) = 0;
  // Clients by fd; jobs by dispatcher-global id; outstanding_ is the
  // LB-side per-backend queue depth.
  std::map<int, ClientConn> clients_ STALE_GUARDED_BY(loop_serial_);
  std::map<std::uint64_t, InFlightJob> jobs_ STALE_GUARDED_BY(loop_serial_);
  std::vector<int> outstanding_ STALE_GUARDED_BY(loop_serial_);
  std::uint64_t next_gid_ STALE_GUARDED_BY(loop_serial_) = 1;

  // Health subsystem (null/empty when options_.health is disabled).
  // Probes are keyed by probe socket fd; live_mask_ is candidates AND
  // registered.
  std::unique_ptr<health::Membership> membership_
      STALE_PT_GUARDED_BY(loop_serial_);
  std::map<int, ProbeConn> probes_ STALE_GUARDED_BY(loop_serial_);
  std::vector<std::uint8_t> live_mask_ STALE_GUARDED_BY(loop_serial_);
  bool was_degraded_ STALE_GUARDED_BY(loop_serial_) = false;

  DispatcherStats stats_ STALE_GUARDED_BY(loop_serial_);
};

}  // namespace stale::net
