#include "net/buffer.h"

#include <sys/socket.h>

#include <cerrno>

namespace stale::net {

bool WriteBuffer::flush(int fd) {
  while (!pending_.empty()) {
    const ssize_t sent =
        send(fd, pending_.data(), pending_.size(), MSG_NOSIGNAL);
    if (sent > 0) {
      pending_.erase(0, static_cast<std::size_t>(sent));
      continue;
    }
    // ENOTCONN: a non-blocking connect still in progress; the bytes stay
    // queued until the loop reports writability.
    if (sent < 0 &&
        (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOTCONN)) {
      return true;
    }
    if (sent < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace stale::net
