// Thin RAII + factory layer over BSD sockets, IPv4 only (the live loop is a
// loopback/LAN tool, not a general server framework). Every socket comes
// back non-blocking; callers drive them from net::EventLoop.
//
// Errors at socket creation are programming/configuration errors (bad
// address, port in use) and throw std::runtime_error; errors on established
// sockets are runtime conditions the owning connection handles via errno.
#pragma once

#include <cstdint>
#include <string>

namespace stale::net {

// "host:port" with a numeric port; host may be a dotted quad or "localhost".
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  std::string to_string() const;
};

// Throws std::invalid_argument on a malformed spec or out-of-range port.
Endpoint parse_endpoint(const std::string& text);

// Move-only owner of a file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Non-blocking listening TCP socket (SO_REUSEADDR). `port` 0 asks the kernel
// for an ephemeral port; the actually bound port is written to `bound_port`.
Fd tcp_listen(const std::string& host, std::uint16_t port,
              std::uint16_t* bound_port);

// Non-blocking TCP connect; an in-progress connect (EINPROGRESS) is success,
// the event loop reports writability when it completes. TCP_NODELAY is set:
// every message here is a small latency-sensitive line.
Fd tcp_connect(const Endpoint& endpoint);

// Accepts one pending connection from a listening socket; invalid Fd when
// the accept queue is empty. Accepted sockets are non-blocking + NODELAY.
Fd tcp_accept(int listen_fd);

// Non-blocking bound UDP socket for receiving; `port` 0 = ephemeral.
Fd udp_bind(const std::string& host, std::uint16_t port,
            std::uint16_t* bound_port);

// Non-blocking unbound UDP socket for sending.
Fd udp_socket();

// One datagram to `endpoint`; best-effort (drops on error, like the network
// would).
void udp_send(int fd, const Endpoint& endpoint, const std::string& payload);

}  // namespace stale::net
