#include "net/backend.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>

#include "sim/distributions.h"

namespace stale::net {

Backend::Backend(const BackendOptions& options)
    : options_(options), rng_(options.seed) {
  if (options.mean_service <= 0.0) {
    throw std::invalid_argument("backend mean service time must be > 0");
  }
  if (options.report_to.empty()) {
    throw std::invalid_argument("backend needs --report HOST:PORT");
  }
  for (const Endpoint& endpoint : options.report_to) {
    if (endpoint.port == 0) {
      throw std::invalid_argument("backend report endpoint needs a port");
    }
  }
  links_.resize(options.report_to.size());
  listen_fd_ = tcp_listen(options.host, options.tcp_port, &tcp_port_);
  udp_fd_ = udp_socket();
  status("BACKEND LISTENING index=" + std::to_string(options_.index) +
         " tcp=" + std::to_string(tcp_port_));
}

void Backend::status(const std::string& line) {
  if (options_.status_out == nullptr) return;
  *options_.status_out << line << std::endl;
}

int Backend::connected_links() const {
  int count = 0;
  for (const Link& link : links_) count += link.connected ? 1 : 0;
  return count;
}

void Backend::run(const std::atomic<bool>* stop_flag) {
  loop_.watch(listen_fd_.get(), /*want_read=*/true, /*want_write=*/false,
              [this](std::uint32_t) { accept_dispatcher(); });
  send_hello();
  if (options_.update_period > 0.0) {
    loop_.add_timer(options_.update_period, [this] { send_load_report(); });
  }
  loop_.run(stop_flag);
}

void Backend::send_hello() {
  // Broadcast until every dispatcher holds a data-plane connection. The
  // backend cannot tell which dispatchers those are (accept() gives an
  // ephemeral peer port), so it HELLOs all of them; an already-connected
  // dispatcher treats the duplicate as a heartbeat and ignores it.
  if (connected_links() < static_cast<int>(links_.size())) {
    for (const Endpoint& endpoint : options_.report_to) {
      udp_send(udp_fd_.get(), endpoint,
               format_hello(HelloMsg{options_.index, tcp_port_}));
    }
    loop_.add_timer(options_.hello_period, [this] { send_hello(); });
  }
}

void Backend::send_load_report() {
  // One measurement, fanned out: every dispatcher's board samples the same
  // ground-truth queue at the same instant, with the same sequence number.
  const LoadMsg msg{options_.index, queue_len(), report_seq_++};
  for (const Endpoint& endpoint : options_.report_to) {
    udp_send(udp_fd_.get(), endpoint, format_load(msg));
    ++stats_.reports_sent;
  }
  loop_.add_timer(options_.update_period, [this] { send_load_report(); });
}

void Backend::accept_dispatcher() {
  for (;;) {
    Fd conn = tcp_accept(listen_fd_.get());
    if (!conn.valid()) return;
    int slot = -1;
    for (std::size_t i = 0; i < links_.size(); ++i) {
      if (!links_[i].connected) {
        slot = static_cast<int>(i);
        break;
      }
    }
    if (slot < 0) continue;  // all dispatchers connected; drop extras
    Link& link = links_[static_cast<std::size_t>(slot)];
    link.fd = std::move(conn);
    link.in = LineBuffer();
    link.out = WriteBuffer();
    link.connected = true;
    loop_.watch(link.fd.get(), /*want_read=*/true, /*want_write=*/false,
                [this, slot](std::uint32_t events) {
                  Link& l = links_[static_cast<std::size_t>(slot)];
                  if (events & EventLoop::kError) {
                    drop_link(slot);
                    return;
                  }
                  if (events & EventLoop::kWritable) {
                    l.out.flush(l.fd.get());
                    loop_.set_interest(l.fd.get(), true, l.out.wants_write());
                  }
                  if (events & EventLoop::kReadable) on_link_readable(slot);
                });
    status("BACKEND CONNECTED index=" + std::to_string(options_.index) +
           " link=" + std::to_string(slot) + "/" +
           std::to_string(links_.size()));
  }
}

void Backend::on_link_readable(int link_index) {
  Link& link = links_[static_cast<std::size_t>(link_index)];
  char buffer[4096];
  for (;;) {
    const ssize_t n = recv(link.fd.get(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      link.in.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    drop_link(link_index);
    return;
  }
  if (link.in.poisoned()) {
    drop_link(link_index);
    return;
  }
  std::string line;
  while (link.connected && link.in.next_line(&line)) {
    const auto job = parse_job(line);
    if (!job) continue;
    ++stats_.jobs_accepted;
    queue_.push_back(QueuedJob{job->id, link_index});
    stats_.max_queue_len = std::max(stats_.max_queue_len, queue_len());
    start_service_if_idle();
  }
}

void Backend::start_service_if_idle() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  in_service_ = queue_.front();
  queue_.pop_front();
  in_service_duration_ = sim::Exponential(options_.mean_service).sample(rng_);
  loop_.add_timer(in_service_duration_, [this] { finish_job(); });
}

void Backend::finish_job() {
  busy_ = false;
  ++stats_.jobs_served;
  // DONE goes back over the connection the job arrived on — each dispatcher
  // tracks only its own in-flight jobs. A link that died mid-service just
  // loses the reply; that dispatcher's timeout path owns the job now.
  Link& link = links_[static_cast<std::size_t>(in_service_.link)];
  if (link.connected) {
    // The drawn service time rides along so a recording dispatcher can write
    // replayable job sizes (trace-v2).
    link.out.append(format_done(
        DoneMsg{in_service_.gid, queue_len(), in_service_duration_}));
    link.out.flush(link.fd.get());
    loop_.set_interest(link.fd.get(), true, link.out.wants_write());
  }
  start_service_if_idle();
}

void Backend::drop_link(int link_index) {
  Link& link = links_[static_cast<std::size_t>(link_index)];
  if (!link.connected) return;
  loop_.forget(link.fd.get());
  link.fd.reset();
  link.connected = false;
  // Drop only the dead dispatcher's queued jobs: the survivors' jobs are
  // still owed DONEs on their own live connections.
  std::deque<QueuedJob> kept;
  for (const QueuedJob& job : queue_) {
    if (job.link != link_index) kept.push_back(job);
  }
  queue_.swap(kept);
  // Re-announce so a restarted dispatcher can pick this backend up again.
  send_hello();
  status("BACKEND DISCONNECTED index=" + std::to_string(options_.index) +
         " link=" + std::to_string(link_index));
}

}  // namespace stale::net
