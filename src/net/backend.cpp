#include "net/backend.h"

#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>

#include "sim/distributions.h"

namespace stale::net {

Backend::Backend(const BackendOptions& options)
    : options_(options), rng_(options.seed) {
  if (options.mean_service <= 0.0) {
    throw std::invalid_argument("backend mean service time must be > 0");
  }
  if (options.report_to.port == 0) {
    throw std::invalid_argument("backend needs --report HOST:PORT");
  }
  listen_fd_ = tcp_listen(options.host, options.tcp_port, &tcp_port_);
  udp_fd_ = udp_socket();
  status("BACKEND LISTENING index=" + std::to_string(options_.index) +
         " tcp=" + std::to_string(tcp_port_));
}

void Backend::status(const std::string& line) {
  if (options_.status_out == nullptr) return;
  *options_.status_out << line << std::endl;
}

void Backend::run(const std::atomic<bool>* stop_flag) {
  loop_.watch(listen_fd_.get(), /*want_read=*/true, /*want_write=*/false,
              [this](std::uint32_t) { accept_dispatcher(); });
  send_hello();
  if (options_.update_period > 0.0) {
    loop_.add_timer(options_.update_period, [this] { send_load_report(); });
  }
  loop_.run(stop_flag);
}

void Backend::send_hello() {
  if (!connected_) {
    udp_send(udp_fd_.get(), options_.report_to,
             format_hello(HelloMsg{options_.index, tcp_port_}));
    loop_.add_timer(options_.hello_period, [this] { send_hello(); });
  }
}

void Backend::send_load_report() {
  udp_send(udp_fd_.get(), options_.report_to,
           format_load(LoadMsg{options_.index, queue_len(), report_seq_++}));
  ++stats_.reports_sent;
  loop_.add_timer(options_.update_period, [this] { send_load_report(); });
}

void Backend::accept_dispatcher() {
  for (;;) {
    Fd conn = tcp_accept(listen_fd_.get());
    if (!conn.valid()) return;
    if (connected_) continue;  // one dispatcher only; drop extras
    conn_ = std::move(conn);
    in_ = LineBuffer();
    out_ = WriteBuffer();
    connected_ = true;
    loop_.watch(conn_.get(), /*want_read=*/true, /*want_write=*/false,
                [this](std::uint32_t events) {
                  if (events & EventLoop::kError) {
                    drop_conn();
                    return;
                  }
                  if (events & EventLoop::kWritable) {
                    out_.flush(conn_.get());
                    loop_.set_interest(conn_.get(), true, out_.wants_write());
                  }
                  if (events & EventLoop::kReadable) on_conn_readable();
                });
    status("BACKEND CONNECTED index=" + std::to_string(options_.index));
  }
}

void Backend::on_conn_readable() {
  char buffer[4096];
  for (;;) {
    const ssize_t n = recv(conn_.get(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      in_.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    drop_conn();
    return;
  }
  if (in_.poisoned()) {
    drop_conn();
    return;
  }
  std::string line;
  while (connected_ && in_.next_line(&line)) {
    const auto job = parse_job(line);
    if (!job) continue;
    ++stats_.jobs_accepted;
    queue_.push_back(job->id);
    stats_.max_queue_len = std::max(stats_.max_queue_len, queue_len());
    start_service_if_idle();
  }
}

void Backend::start_service_if_idle() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  in_service_ = queue_.front();
  queue_.pop_front();
  const double service =
      sim::Exponential(options_.mean_service).sample(rng_);
  loop_.add_timer(service, [this] { finish_job(); });
}

void Backend::finish_job() {
  busy_ = false;
  ++stats_.jobs_served;
  if (connected_) {
    out_.append(format_done(DoneMsg{in_service_, queue_len()}));
    out_.flush(conn_.get());
    loop_.set_interest(conn_.get(), true, out_.wants_write());
  }
  start_service_if_idle();
}

void Backend::drop_conn() {
  if (!connected_) return;
  loop_.forget(conn_.get());
  conn_.reset();
  connected_ = false;
  queue_.clear();
  // Re-announce so a restarted dispatcher can pick this backend up again.
  send_hello();
  status("BACKEND DISCONNECTED index=" + std::to_string(options_.index));
}

}  // namespace stale::net
