#include "workload/job_size.h"

namespace stale::workload {

sim::DistributionPtr make_job_size(const std::string& spec) {
  if (spec == "pareto_fig10") {
    return std::make_unique<sim::BoundedPareto>(
        sim::BoundedPareto::with_mean(1.1, 1.0, 1000.0));
  }
  if (spec == "pareto_fig11") {
    return std::make_unique<sim::BoundedPareto>(
        sim::BoundedPareto::with_mean(1.5, 1.0, 1024.0));
  }
  return sim::parse_distribution(spec);
}

}  // namespace stale::workload
