#include "workload/arrival_process.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace stale::workload {

PoissonProcess::PoissonProcess(double rate) : rate_(rate) {
  if (rate <= 0.0) {
    throw std::invalid_argument("PoissonProcess: rate must be > 0");
  }
}

double PoissonProcess::next_gap(sim::Rng& rng) {
  return -std::log(rng.next_double_open0()) / rate_;
}

std::string PoissonProcess::describe() const {
  std::ostringstream os;
  os << "poisson(rate=" << rate_ << ")";
  return os.str();
}

}  // namespace stale::workload
