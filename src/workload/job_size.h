// Job-size (service-demand) distributions. These are the sim distributions
// re-exported behind a small factory that also provides the paper's named
// workloads:
//   "exp:1"                       the default exponential(1) service times
//   "pareto_fig10"                Bounded Pareto, alpha = 1.1, max = 1000x
//                                 mean, mean = 1 (Figure 10)
//   "pareto_fig11"                Bounded Pareto, alpha = 1.5, max = 1024x
//                                 mean, mean = 1 (Figure 11)
// plus any raw spec understood by sim::parse_distribution.
#pragma once

#include <string>

#include "sim/distributions.h"

namespace stale::workload {

// Returns a job-size distribution for a named workload or raw spec.
sim::DistributionPtr make_job_size(const std::string& spec);

}  // namespace stale::workload
