// Bursty per-client arrivals (paper Section 5.4): a client with long-run
// mean inter-request time T issues bursts of requests whose within-burst
// gaps are exponential with a small mean, separated by much longer
// exponential think times. Burst lengths are geometric with the configured
// mean, and the between-burst mean is solved so the long-run mean gap stays
// exactly T:
//     T = (1 - 1/B) * g_in + (1/B) * g_out
// where B = mean burst length, g_in = within-burst mean gap.
#pragma once

#include "workload/arrival_process.h"

namespace stale::workload {

class BurstyProcess final : public ArrivalProcess {
 public:
  // `mean_gap`: the long-run mean inter-request time T.
  // `mean_burst_length`: expected requests per burst (B >= 1).
  // `within_burst_gap`: mean gap between requests inside a burst; must
  // satisfy (1 - 1/B) * within_burst_gap < mean_gap so that the solved
  // between-burst gap is positive.
  BurstyProcess(double mean_gap, double mean_burst_length,
                double within_burst_gap);

  double next_gap(sim::Rng& rng) override;
  double mean_gap() const override { return mean_gap_; }
  std::string describe() const override;

  double between_burst_gap() const { return between_gap_; }

 private:
  double mean_gap_;
  double burst_length_;
  double within_gap_;
  double between_gap_;
  double continue_prob_;  // P(burst continues) = 1 - 1/B
};

}  // namespace stale::workload
