#include "workload/replay.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace stale::workload {

const char kManifestFile[] = "manifest.txt";
const char kArrivalsFile[] = "arrivals.trace";
const char kLoadsFile[] = "loads.csv";
const char kMetricsFile[] = "metrics.json";

namespace {

constexpr char kMagic[] = "staleload-trace";

[[noreturn]] void bad_manifest(const std::string& why) {
  throw std::invalid_argument("trace-v2 manifest: " + why);
}

}  // namespace

double ReplayTrace::empirical_rate() const {
  if (arrivals.size() < 2) return 0.0;
  const double span = arrivals.back().arrival - arrivals.front().arrival;
  if (span <= 0.0) return 0.0;
  return static_cast<double>(arrivals.size() - 1) / span;
}

void write_manifest(std::ostream& out, const ReplayManifest& manifest) {
  out << kMagic << " v" << manifest.version << "\n";
  out << std::setprecision(17);
  out << "backends " << manifest.backends << "\n"
      << "update_period " << manifest.update_period << "\n"
      << "schedule " << manifest.schedule << "\n"
      << "policy " << manifest.policy << "\n"
      << "seed " << manifest.seed << "\n"
      << "duration " << manifest.duration << "\n"
      << "arrivals " << manifest.arrivals << "\n";
}

ReplayManifest parse_manifest(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) bad_manifest("empty file");
  {
    std::istringstream header(line);
    std::string magic, version;
    header >> magic >> version;
    if (magic != kMagic) bad_manifest("bad magic '" + magic + "'");
    if (version != "v2") {
      bad_manifest("unsupported version '" + version + "' (expected v2)");
    }
  }
  ReplayManifest manifest;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    bool ok = true;
    if (key == "backends") {
      ok = static_cast<bool>(fields >> manifest.backends);
    } else if (key == "update_period") {
      ok = static_cast<bool>(fields >> manifest.update_period);
    } else if (key == "schedule") {
      ok = static_cast<bool>(fields >> manifest.schedule);
    } else if (key == "policy") {
      ok = static_cast<bool>(fields >> manifest.policy);
    } else if (key == "seed") {
      ok = static_cast<bool>(fields >> manifest.seed);
    } else if (key == "duration") {
      ok = static_cast<bool>(fields >> manifest.duration);
    } else if (key == "arrivals") {
      ok = static_cast<bool>(fields >> manifest.arrivals);
    } else {
      // Unknown keys are skipped so v2 readers tolerate additive fields.
      continue;
    }
    if (!ok) {
      bad_manifest("line " + std::to_string(line_number) + ": bad value for '" +
                   key + "'");
    }
  }
  if (manifest.backends <= 0) bad_manifest("backends must be > 0");
  if (manifest.update_period <= 0.0) bad_manifest("update_period must be > 0");
  return manifest;
}

void write_loads(std::ostream& out, const std::vector<LoadEvent>& loads) {
  out << "time,server,queue_len\n";
  out << std::setprecision(17);
  for (const LoadEvent& event : loads) {
    out << event.time << ',' << event.server << ',' << event.queue_len << '\n';
  }
}

std::vector<LoadEvent> parse_loads(std::istream& in) {
  std::vector<LoadEvent> loads;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    if (line_number == 1 && line.rfind("time,", 0) == 0) continue;  // header
    std::istringstream fields(line);
    LoadEvent event;
    char comma1 = 0;
    char comma2 = 0;
    if (!(fields >> event.time >> comma1 >> event.server >> comma2 >>
          event.queue_len) ||
        comma1 != ',' || comma2 != ',') {
      throw std::invalid_argument("trace-v2 loads line " +
                                  std::to_string(line_number) +
                                  ": expected time,server,queue_len");
    }
    if (event.server < 0 || event.queue_len < 0) {
      throw std::invalid_argument("trace-v2 loads line " +
                                  std::to_string(line_number) +
                                  ": negative server or queue length");
    }
    loads.push_back(event);
  }
  return loads;
}

void write_arrivals(std::ostream& out,
                    const std::vector<TraceRecord>& arrivals) {
  out << "# trace-v2 arrivals: <arrival-time> <service-time>\n";
  out << std::setprecision(17);
  for (const TraceRecord& record : arrivals) {
    out << record.arrival << ' ' << record.size << '\n';
  }
}

ReplayTrace load_replay_trace(const std::string& dir) {
  ReplayTrace trace;
  {
    std::ifstream in(dir + "/" + kManifestFile);
    if (!in) {
      throw std::runtime_error("load_replay_trace: cannot open '" + dir + "/" +
                               kManifestFile + "'");
    }
    trace.manifest = parse_manifest(in);
  }
  {
    std::ifstream in(dir + "/" + kArrivalsFile);
    if (!in) {
      throw std::runtime_error("load_replay_trace: cannot open '" + dir + "/" +
                               kArrivalsFile + "'");
    }
    trace.arrivals = parse_trace(in);
  }
  {
    std::ifstream in(dir + "/" + kLoadsFile);
    if (!in) {
      throw std::runtime_error("load_replay_trace: cannot open '" + dir + "/" +
                               kLoadsFile + "'");
    }
    trace.loads = parse_loads(in);
  }
  if (trace.arrivals.size() != trace.manifest.arrivals) {
    throw std::invalid_argument(
        "load_replay_trace: manifest promises " +
        std::to_string(trace.manifest.arrivals) + " arrivals but " +
        kArrivalsFile + " holds " + std::to_string(trace.arrivals.size()));
  }
  return trace;
}

ReplayProcess::ReplayProcess(const std::vector<TraceRecord>& records) {
  if (records.size() < 2) {
    throw std::invalid_argument("ReplayProcess: need at least two arrivals");
  }
  gaps_.reserve(records.size());
  // The first gap places the first arrival at its recorded offset; the rest
  // are plain inter-arrival gaps. Emitting |records| gaps (not |records|-1)
  // lets a replay deliver exactly the recorded job count before wrapping.
  double previous = 0.0;
  for (const TraceRecord& record : records) {
    const double gap = record.arrival - previous;
    if (gap < 0.0) {
      throw std::invalid_argument("ReplayProcess: arrival times not sorted");
    }
    gaps_.push_back(gap);
    previous = record.arrival;
  }
  const double span = records.back().arrival;
  mean_gap_ = span > 0.0 ? span / static_cast<double>(gaps_.size()) : 1.0;
}

double ReplayProcess::next_gap(sim::Rng&) {
  // Wrap lazily: a run that consumes exactly the recorded job count never
  // recycles a gap and must report zero wraps.
  if (next_ == gaps_.size()) {
    next_ = 0;
    ++wraps_;
  }
  return gaps_[next_++];
}

void ReplayProcess::reset() {
  next_ = 0;
  wraps_ = 0;
}

std::string ReplayProcess::describe() const {
  std::ostringstream os;
  os << "replay(" << gaps_.size() << " arrivals, mean gap " << mean_gap_
     << ")";
  return os.str();
}

}  // namespace stale::workload
