#include "workload/bursty_process.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace stale::workload {

BurstyProcess::BurstyProcess(double mean_gap, double mean_burst_length,
                             double within_burst_gap)
    : mean_gap_(mean_gap),
      burst_length_(mean_burst_length),
      within_gap_(within_burst_gap) {
  if (mean_gap <= 0.0 || mean_burst_length < 1.0 || within_burst_gap < 0.0) {
    throw std::invalid_argument(
        "BurstyProcess: need mean_gap > 0, burst length >= 1, within >= 0");
  }
  continue_prob_ = 1.0 - 1.0 / mean_burst_length;
  // Solve T = continue_prob * g_in + (1 - continue_prob) * g_out for g_out.
  const double inside_share = continue_prob_ * within_gap_;
  if (inside_share >= mean_gap) {
    throw std::invalid_argument(
        "BurstyProcess: within-burst gaps alone exceed the target mean gap");
  }
  between_gap_ = (mean_gap - inside_share) / (1.0 - continue_prob_);
}

double BurstyProcess::next_gap(sim::Rng& rng) {
  // Memoryless burst membership: after each request the burst continues with
  // probability 1 - 1/B, making burst lengths geometric with mean B.
  const bool continues = rng.next_double() < continue_prob_;
  const double mean = continues ? within_gap_ : between_gap_;
  if (mean == 0.0) return 0.0;
  return -mean * std::log(rng.next_double_open0());
}

std::string BurstyProcess::describe() const {
  std::ostringstream os;
  os << "bursty(T=" << mean_gap_ << ",B=" << burst_length_
     << ",g_in=" << within_gap_ << ")";
  return os.str();
}

}  // namespace stale::workload
