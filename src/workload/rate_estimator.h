// Cumulative exponential moving average (CEMA) arrival-rate estimation.
//
// The plain EMA x' = a*v + (1-a)*x is biased toward its initializer for the
// first ~1/a updates — exactly the warm-up window where LI most needs a
// usable lambda-hat. The CEMA divides the EMA accumulator by the cumulative
// weight it has actually absorbed, 1 - (1-a)^k after k updates, so the
// estimate equals the *weighted average of the observed samples only*: after
// one update it is that sample, during warm-up it behaves like a cumulative
// (unbiased) mean, and it converges to the steady-state EMA as k grows.
// bulk_update folds `repeat` consecutive equal samples in closed form —
//   E' = v*(1 - (1-a)^repeat) + (1-a)^repeat * E
// — which is what makes long idle stretches (runs of zero-count buckets)
// O(1) instead of O(idle time / bucket).
//
// CemaRateEstimator adapts the discrete CEMA to a continuous arrival clock:
// arrivals are counted into fixed-width time buckets; each completed bucket
// contributes one rate sample count/width, and the empty buckets a long gap
// skips over contribute a single bulk_update(0, k). Wired into LI policies
// the estimate makes K = lambda_hat * T track nonstationary traffic (flash
// crowds, ramps, MMPP regime switches) instead of a configured constant.
#pragma once

#include <cstdint>
#include <string>

#include "core/rate_estimator.h"

namespace stale::workload {

// The bias-corrected EMA core. value() is exactly the weighted mean of the
// samples seen so far (geometric weights, newest heaviest).
struct Cema {
  double exponential = 0.0;      // raw EMA accumulator
  double decay_factor = 1.0;     // (1 - alpha)^updates
  std::uint64_t updates = 0;

  void update(double value, double alpha);
  // Equivalent to `repeat` consecutive update(value, alpha) calls, in O(1).
  void bulk_update(double value, std::uint64_t repeat, double alpha);
  double value() const;  // 0 before the first update
};

// Bucketed CEMA rate estimator: alpha is the per-bucket blend weight,
// bucket_width the sampling interval, initial_rate the estimate reported
// before the first bucket completes (callers follow the paper's conservative
// rule and pass the cluster's max throughput, or a near-zero value when
// "treat the board as fresh until evidence arrives" is wanted).
class CemaRateEstimator final : public core::RateEstimator {
 public:
  CemaRateEstimator(double alpha, double bucket_width, double initial_rate);

  void on_arrival(double t) override;
  double rate() const override;
  std::string describe() const override;

  std::uint64_t buckets_closed() const { return cema_.updates; }

 private:
  double alpha_;
  double bucket_;
  double initial_rate_;
  bool started_ = false;
  double bucket_start_ = 0.0;
  std::uint64_t in_bucket_ = 0;
  Cema cema_;
};

}  // namespace stale::workload
