#include "workload/arrival_spec.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "check/contracts.h"
#include "workload/trace.h"

namespace stale::workload {

namespace {

// Splits "name:a:b:c" into {"name", "a", "b", "c"}.
std::vector<std::string> split_spec(const std::string& spec) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (;;) {
    const std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) {
      parts.push_back(spec.substr(start));
      return parts;
    }
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
}

double parse_field(const std::string& spec, const std::string& field,
                   const char* name) {
  try {
    std::size_t used = 0;
    const double value = std::stod(field, &used);
    if (used != field.size() || !std::isfinite(value)) {
      throw std::invalid_argument("trailing garbage");
    }
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("arrival spec '" + spec + "': bad " + name +
                                " '" + field + "'");
  }
}

struct ParsedSpec {
  std::string kind;
  std::vector<double> params;
  std::string path;  // trace specs only
};

ParsedSpec parse_spec(const std::string& spec) {
  const std::vector<std::string> parts = split_spec(spec);
  ParsedSpec parsed;
  parsed.kind = parts[0];
  if (parsed.kind == "poisson") {
    if (parts.size() != 1) {
      throw std::invalid_argument("arrival spec 'poisson' takes no parameters");
    }
    return parsed;
  }
  if (parsed.kind == "trace") {
    if (parts.size() != 2 || parts[1].empty()) {
      throw std::invalid_argument("arrival spec 'trace' needs a path: "
                                  "trace:FILE");
    }
    parsed.path = parts[1];
    return parsed;
  }
  static const struct {
    const char* kind;
    std::size_t params;
    const char* usage;
  } kForms[] = {
      {"mmpp", 4, "mmpp:M1:M2:D1:D2"},
      {"ramp", 2, "ramp:PERIOD:AMP"},
      {"flash", 5, "flash:AT:MULT:RAMP:HOLD:DECAY"},
  };
  for (const auto& form : kForms) {
    if (parsed.kind != form.kind) continue;
    if (parts.size() != form.params + 1) {
      throw std::invalid_argument("arrival spec '" + spec + "': expected " +
                                  form.usage);
    }
    for (std::size_t i = 1; i < parts.size(); ++i) {
      parsed.params.push_back(parse_field(spec, parts[i], "parameter"));
    }
    return parsed;
  }
  throw std::invalid_argument(
      "unknown arrival spec '" + spec +
      "' (expected poisson | mmpp:M1:M2:D1:D2 | ramp:PERIOD:AMP | "
      "flash:AT:MULT:RAMP:HOLD:DECAY | trace:FILE)");
}

ArrivalProcessPtr build(const ParsedSpec& parsed, double base_rate,
                        bool dry_run) {
  if (parsed.kind == "poisson") {
    if (dry_run) return nullptr;
    return std::make_unique<PoissonProcess>(base_rate);
  }
  if (parsed.kind == "trace") {
    if (dry_run) return nullptr;  // existence checked at build time
    return std::make_unique<TraceProcess>(load_trace(parsed.path));
  }
  if (parsed.kind == "mmpp") {
    const double m0 = parsed.params[0];
    const double m1 = parsed.params[1];
    const double d0 = parsed.params[2];
    const double d1 = parsed.params[3];
    if (m0 < 0.0 || m1 < 0.0 || m0 + m1 <= 0.0) {
      throw std::invalid_argument(
          "mmpp: rate multipliers must be >= 0 with at least one > 0");
    }
    if (d0 <= 0.0 || d1 <= 0.0) {
      throw std::invalid_argument("mmpp: dwell times must be > 0");
    }
    if (dry_run) return nullptr;
    return std::make_unique<MmppProcess>(base_rate * m0, base_rate * m1, d0,
                                         d1);
  }
  if (parsed.kind == "ramp") {
    ModulatedPoissonProcess::RampParams ramp;
    ramp.period = parsed.params[0];
    ramp.amplitude = parsed.params[1];
    if (ramp.period <= 0.0) {
      throw std::invalid_argument("ramp: period must be > 0");
    }
    if (ramp.amplitude < 0.0 || ramp.amplitude >= 1.0) {
      throw std::invalid_argument("ramp: amplitude must be in [0, 1)");
    }
    if (dry_run) return nullptr;
    return std::make_unique<ModulatedPoissonProcess>(base_rate, ramp);
  }
  ModulatedPoissonProcess::FlashParams flash;
  flash.at = parsed.params[0];
  flash.mult = parsed.params[1];
  flash.ramp = parsed.params[2];
  flash.hold = parsed.params[3];
  flash.decay = parsed.params[4];
  if (flash.at < 0.0) {
    throw std::invalid_argument("flash: onset time must be >= 0");
  }
  if (flash.mult < 1.0) {
    throw std::invalid_argument("flash: peak multiplier must be >= 1");
  }
  if (flash.ramp < 0.0 || flash.hold < 0.0 || flash.decay < 0.0) {
    throw std::invalid_argument("flash: ramp/hold/decay must be >= 0");
  }
  if (dry_run) return nullptr;
  return std::make_unique<ModulatedPoissonProcess>(base_rate, flash);
}

}  // namespace

ArrivalProcessPtr make_arrival_process(const std::string& spec,
                                       double base_rate) {
  if (base_rate <= 0.0) {
    throw std::invalid_argument("make_arrival_process: base rate must be > 0");
  }
  return build(parse_spec(spec), base_rate, /*dry_run=*/false);
}

void validate_arrival_spec(const std::string& spec) {
  build(parse_spec(spec), /*base_rate=*/1.0, /*dry_run=*/true);
}

// --- MMPP ------------------------------------------------------------------

MmppProcess::MmppProcess(double rate0, double rate1, double dwell0,
                         double dwell1)
    : rates_{rate0, rate1}, dwells_{dwell0, dwell1} {
  // Long-run rate: dwell-weighted average of the per-state rates.
  const double long_run =
      (rate0 * dwell0 + rate1 * dwell1) / (dwell0 + dwell1);
  STALE_ASSERT(long_run > 0.0, "MmppProcess: zero long-run rate");
  mean_gap_ = 1.0 / long_run;
}

double MmppProcess::next_gap(sim::Rng& rng) {
  double gap = 0.0;
  for (;;) {
    if (switch_at_ < 0.0) {
      switch_at_ =
          now_ - std::log(rng.next_double_open0()) * dwells_[state_];
    }
    const double rate = rates_[state_];
    if (rate > 0.0) {
      const double candidate = -std::log(rng.next_double_open0()) / rate;
      if (now_ + candidate <= switch_at_) {
        gap += candidate;
        now_ += candidate;
        return gap;
      }
    }
    // No arrival before the state switch (or a zero-rate state): consume the
    // rest of the dwell and redraw in the new state. Memorylessness makes
    // discarding the overshooting candidate exact.
    gap += switch_at_ - now_;
    now_ = switch_at_;
    state_ = 1 - state_;
    switch_at_ = -1.0;
  }
}

std::string MmppProcess::describe() const {
  std::ostringstream os;
  os << "mmpp(rates " << rates_[0] << "/" << rates_[1] << ", dwells "
     << dwells_[0] << "/" << dwells_[1] << ")";
  return os.str();
}

void MmppProcess::reset() {
  state_ = 0;
  now_ = 0.0;
  switch_at_ = -1.0;
}

// --- thinned time-varying Poisson ------------------------------------------

ModulatedPoissonProcess::ModulatedPoissonProcess(double base_rate,
                                                 const RampParams& ramp)
    : shape_(Shape::kRamp),
      base_rate_(base_rate),
      max_rate_(base_rate * (1.0 + ramp.amplitude)),
      ramp_(ramp) {}

ModulatedPoissonProcess::ModulatedPoissonProcess(double base_rate,
                                                 const FlashParams& flash)
    : shape_(Shape::kFlash),
      base_rate_(base_rate),
      max_rate_(base_rate * flash.mult),
      flash_(flash) {}

double ModulatedPoissonProcess::rate_at(double t) const {
  if (shape_ == Shape::kRamp) {
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return base_rate_ *
           (1.0 + ramp_.amplitude * std::sin(kTwoPi * t / ramp_.period));
  }
  // Flash-crowd envelope: 1x -> mult over `ramp`, hold, back to 1x.
  const double peak_start = flash_.at + flash_.ramp;
  const double peak_end = peak_start + flash_.hold;
  const double off = peak_end + flash_.decay;
  double mult = 1.0;
  if (t <= flash_.at || t >= off) {
    mult = 1.0;
  } else if (t < peak_start) {
    mult = 1.0 + (flash_.mult - 1.0) * (t - flash_.at) / flash_.ramp;
  } else if (t <= peak_end) {
    mult = flash_.mult;
  } else {
    mult = flash_.mult - (flash_.mult - 1.0) * (t - peak_end) / flash_.decay;
  }
  return base_rate_ * mult;
}

double ModulatedPoissonProcess::next_gap(sim::Rng& rng) {
  // Ogata thinning: candidates from a homogeneous stream at max_rate_, each
  // accepted with probability rate(t)/max_rate_. Exact for any rate function
  // bounded by max_rate_.
  const double start = now_;
  for (;;) {
    now_ += -std::log(rng.next_double_open0()) / max_rate_;
    if (rng.next_double() * max_rate_ <= rate_at(now_)) {
      return now_ - start;
    }
  }
}

std::string ModulatedPoissonProcess::describe() const {
  std::ostringstream os;
  if (shape_ == Shape::kRamp) {
    os << "ramp(base " << base_rate_ << ", period " << ramp_.period
       << ", amp " << ramp_.amplitude << ")";
  } else {
    os << "flash(base " << base_rate_ << ", at " << flash_.at << ", x"
       << flash_.mult << ", ramp " << flash_.ramp << ", hold " << flash_.hold
       << ", decay " << flash_.decay << ")";
  }
  return os.str();
}

}  // namespace stale::workload
