// Trace-driven workloads (paper future work: "evaluate and adapt the LI
// principles to more realistic workloads"). A trace is a text file with one
// job per line:
//     <arrival-time> [job-size]
// Arrival times must be non-decreasing; job size defaults to 1.0. Lines
// starting with '#' and blank lines are ignored.
//
// TraceProcess replays the inter-arrival gaps (optionally rescaled to a
// target mean rate); TraceSizes replays the job sizes. Both loop over the
// trace when exhausted, so a finite trace can drive an arbitrarily long
// simulation (the wrap is a documented approximation).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/distributions.h"
#include "workload/arrival_process.h"

namespace stale::workload {

struct TraceRecord {
  double arrival;
  double size;
};

// Parses a trace from a stream. Throws std::invalid_argument on malformed
// lines or time going backwards.
std::vector<TraceRecord> parse_trace(std::istream& in);

// Loads a trace file from disk. Throws std::runtime_error if unreadable.
std::vector<TraceRecord> load_trace(const std::string& path);

// Replays a trace's inter-arrival gaps. With `rate_scale` != 1 all gaps are
// divided by it (doubling the scale doubles the arrival rate). The cursor
// persists across next_gap calls; reset() rewinds it (and the wrap counter)
// so one process can drive several trials without leaking position, and
// wraps() reports how many times the finite trace looped so callers can
// surface the approximation instead of silently recycling gaps.
class TraceProcess final : public ArrivalProcess {
 public:
  explicit TraceProcess(std::vector<TraceRecord> records,
                        double rate_scale = 1.0);

  double next_gap(sim::Rng&) override;
  double mean_gap() const override;
  std::string describe() const override;
  void reset() override;
  std::uint64_t wraps() const override { return wraps_; }

 private:
  std::vector<double> gaps_;
  double mean_gap_;
  std::size_t next_ = 0;
  std::uint64_t wraps_ = 0;
};

// Replays a trace's job sizes as a Distribution (ignores the Rng).
// mean()/variance() are the trace's empirical moments. Like TraceProcess the
// cursor survives across sample calls and loops at end-of-trace; reset()
// rewinds it and wraps() counts the loops.
class TraceSizes final : public sim::Distribution {
 public:
  explicit TraceSizes(std::vector<TraceRecord> records);

  double sample(sim::Rng&) const override;
  double mean() const override { return mean_; }
  double variance() const override { return variance_; }
  std::string describe() const override;
  void reset();
  std::uint64_t wraps() const { return wraps_; }

 private:
  std::vector<double> sizes_;
  double mean_;
  double variance_;
  mutable std::size_t next_ = 0;
  mutable std::uint64_t wraps_ = 0;
};

}  // namespace stale::workload
