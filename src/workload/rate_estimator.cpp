#include "workload/rate_estimator.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace stale::workload {

void Cema::update(double value, double alpha) {
  exponential = alpha * value + (1.0 - alpha) * exponential;
  decay_factor *= 1.0 - alpha;
  ++updates;
}

void Cema::bulk_update(double value, std::uint64_t repeat, double alpha) {
  if (repeat == 0) return;
  // Repeating x' = a*v + (1-a)*x k times telescopes to
  //   x' = v * (1 - (1-a)^k) + (1-a)^k * x.
  const double keep = std::pow(1.0 - alpha, static_cast<double>(repeat));
  exponential = value * (1.0 - keep) + keep * exponential;
  decay_factor *= keep;
  updates += repeat;
}

double Cema::value() const {
  if (updates == 0) return 0.0;
  const double absorbed = 1.0 - decay_factor;
  // After astronomically many updates decay_factor underflows to 0 and the
  // correction is exactly 1 — the plain EMA.
  if (absorbed <= 0.0) return exponential;
  return exponential / absorbed;
}

CemaRateEstimator::CemaRateEstimator(double alpha, double bucket_width,
                                     double initial_rate)
    : alpha_(alpha), bucket_(bucket_width), initial_rate_(initial_rate) {
  if (!(alpha > 0.0) || !(alpha < 1.0)) {
    throw std::invalid_argument("CemaRateEstimator: alpha must be in (0, 1)");
  }
  if (bucket_width <= 0.0) {
    throw std::invalid_argument(
        "CemaRateEstimator: bucket width must be > 0");
  }
  if (initial_rate <= 0.0) {
    throw std::invalid_argument(
        "CemaRateEstimator: initial rate must be > 0");
  }
}

void CemaRateEstimator::on_arrival(double t) {
  if (!started_) {
    // Buckets are aligned to the first arrival, so the estimator needs no
    // external clock origin.
    started_ = true;
    bucket_start_ = t;
    in_bucket_ = 1;
    return;
  }
  if (t < bucket_start_ + bucket_) {
    ++in_bucket_;
    return;
  }
  // Close the current bucket, fold the empty buckets the gap skipped over in
  // one bulk update, and open the bucket containing t.
  cema_.update(static_cast<double>(in_bucket_) / bucket_, alpha_);
  const auto skipped = static_cast<std::uint64_t>(
      std::floor((t - bucket_start_) / bucket_)) - 1;
  cema_.bulk_update(0.0, skipped, alpha_);
  bucket_start_ += static_cast<double>(skipped + 1) * bucket_;
  in_bucket_ = 1;
}

double CemaRateEstimator::rate() const {
  if (cema_.updates == 0) return initial_rate_;
  return cema_.value();
}

std::string CemaRateEstimator::describe() const {
  std::ostringstream os;
  os << "cema(alpha " << alpha_ << ", bucket " << bucket_ << ", initial "
     << initial_rate_ << ")";
  return os.str();
}

}  // namespace stale::workload
