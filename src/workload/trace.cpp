#include "workload/trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace stale::workload {

std::vector<TraceRecord> parse_trace(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  std::size_t line_number = 0;
  double last_arrival = -1.0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;

    std::istringstream fields(line);
    TraceRecord record{0.0, 1.0};
    if (!(fields >> record.arrival)) {
      throw std::invalid_argument("trace line " + std::to_string(line_number) +
                                  ": bad arrival time");
    }
    if (!(fields >> record.size)) {
      record.size = 1.0;  // size column optional
    }
    std::string trailing;
    if (fields >> trailing) {
      throw std::invalid_argument("trace line " + std::to_string(line_number) +
                                  ": unexpected extra field");
    }
    if (record.arrival < last_arrival) {
      throw std::invalid_argument("trace line " + std::to_string(line_number) +
                                  ": arrival time went backwards");
    }
    if (record.size <= 0.0) {
      throw std::invalid_argument("trace line " + std::to_string(line_number) +
                                  ": job size must be > 0");
    }
    last_arrival = record.arrival;
    records.push_back(record);
  }
  return records;
}

std::vector<TraceRecord> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_trace: cannot open '" + path + "'");
  }
  return parse_trace(in);
}

TraceProcess::TraceProcess(std::vector<TraceRecord> records,
                           double rate_scale) {
  if (records.size() < 2) {
    throw std::invalid_argument("TraceProcess: need at least two arrivals");
  }
  if (rate_scale <= 0.0) {
    throw std::invalid_argument("TraceProcess: rate_scale must be > 0");
  }
  gaps_.reserve(records.size() - 1);
  double total = 0.0;
  for (std::size_t i = 1; i < records.size(); ++i) {
    const double gap = (records[i].arrival - records[i - 1].arrival) /
                       rate_scale;
    gaps_.push_back(gap);
    total += gap;
  }
  mean_gap_ = total / static_cast<double>(gaps_.size());
  if (mean_gap_ <= 0.0) {
    throw std::invalid_argument("TraceProcess: trace has zero total duration");
  }
}

double TraceProcess::next_gap(sim::Rng&) {
  // Wrap lazily: consuming exactly the trace once is zero wraps.
  if (next_ == gaps_.size()) {
    next_ = 0;
    ++wraps_;
  }
  return gaps_[next_++];
}

double TraceProcess::mean_gap() const { return mean_gap_; }

void TraceProcess::reset() {
  next_ = 0;
  wraps_ = 0;
}

std::string TraceProcess::describe() const {
  std::ostringstream os;
  os << "trace(" << gaps_.size() << " gaps, mean " << mean_gap_ << ")";
  return os.str();
}

TraceSizes::TraceSizes(std::vector<TraceRecord> records) {
  if (records.empty()) {
    throw std::invalid_argument("TraceSizes: empty trace");
  }
  sizes_.reserve(records.size());
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const TraceRecord& record : records) {
    sizes_.push_back(record.size);
    sum += record.size;
    sum_sq += record.size * record.size;
  }
  mean_ = sum / static_cast<double>(sizes_.size());
  variance_ = sum_sq / static_cast<double>(sizes_.size()) - mean_ * mean_;
  if (variance_ < 0.0) variance_ = 0.0;
}

double TraceSizes::sample(sim::Rng&) const {
  // Lazy wrap, matching TraceProcess::next_gap.
  if (next_ == sizes_.size()) {
    next_ = 0;
    ++wraps_;
  }
  return sizes_[next_++];
}

void TraceSizes::reset() {
  next_ = 0;
  wraps_ = 0;
}

std::string TraceSizes::describe() const {
  std::ostringstream os;
  os << "trace_sizes(" << sizes_.size() << " jobs, mean " << mean_ << ")";
  return os.str();
}

}  // namespace stale::workload
