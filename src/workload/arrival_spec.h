// Parsed nonstationary arrival specs (--arrival-spec). The paper's open
// model assumes a stationary Poisson stream whose rate the dispatcher knows;
// these processes produce the regimes where that assumption breaks — the
// exact regimes (flash crowds, ramps, regime-switching bursts) where a
// mis-estimated lambda makes K = lambda*T interpretation herd. All specs are
// phrased relative to a base rate (lambda * n from the experiment config),
// so --lambda still sets the overall scale:
//
//   poisson                      stationary Poisson at the base rate
//                                (bit-identical to the legacy inline draw)
//   mmpp:M1:M2:D1:D2             2-state Markov-modulated Poisson process:
//                                rate multipliers M1/M2 of the base rate,
//                                exponential dwell times with means D1/D2
//   ramp:PERIOD:AMP              diurnal sinusoid,
//                                rate(t) = base * (1 + AMP*sin(2*pi*t/PERIOD)),
//                                0 <= AMP < 1
//   flash:AT:MULT:RAMP:HOLD:DECAY  flash crowd: rate 1x until AT, climbs
//                                linearly to MULT x over RAMP, holds for
//                                HOLD, decays linearly back over DECAY
//   trace:PATH                   replay the inter-arrival gaps of a trace
//                                file (workload/trace.h format; loops with a
//                                counted wrap when exhausted)
//
// Every process draws exclusively from the sim::Rng handed to next_gap and
// keeps time on an internal clock advanced by the gaps it emits (arrivals
// define the clock), so replacing the inline Poisson draw with
// make_arrival_process("poisson", rate) preserves the historical draw
// sequence bit for bit.
#pragma once

#include <string>

#include "workload/arrival_process.h"

namespace stale::workload {

// Builds the process named by `spec` at base rate `base_rate` (> 0).
// Throws std::invalid_argument on an unknown or malformed spec.
ArrivalProcessPtr make_arrival_process(const std::string& spec,
                                       double base_rate);

// Parse-only validation: throws like make_arrival_process but builds
// nothing heavier than the parse (trace specs check the file exists).
void validate_arrival_spec(const std::string& spec);

// 2-state Markov-modulated Poisson process. Arrivals in state s form a
// Poisson stream at rate[s]; the state itself switches after an exponential
// dwell. Exactness: within a dwell the stream is memoryless, so a candidate
// exponential gap that would overshoot the switch boundary is truncated at
// the boundary and redrawn at the new state's rate.
class MmppProcess final : public ArrivalProcess {
 public:
  MmppProcess(double rate0, double rate1, double dwell0, double dwell1);

  double next_gap(sim::Rng& rng) override;
  double mean_gap() const override { return mean_gap_; }
  std::string describe() const override;
  void reset() override;

 private:
  double rates_[2];
  double dwells_[2];
  double mean_gap_;
  int state_ = 0;
  double now_ = 0.0;
  double switch_at_ = -1.0;  // < 0: dwell not drawn yet
};

// Deterministically time-varying Poisson process sampled by thinning: draw
// candidate gaps from a homogeneous process at rate_max and accept each
// candidate with probability rate(t)/rate_max. The rate function is fixed at
// construction; subclass-free by taking the shape as an enum + parameters so
// the process stays trivially copyable and describable.
class ModulatedPoissonProcess final : public ArrivalProcess {
 public:
  enum class Shape {
    kRamp,   // base * (1 + amp * sin(2*pi*t/period))
    kFlash,  // base, ramp to base*mult at `at`, hold, decay back
  };
  struct RampParams {
    double period = 0.0;
    double amplitude = 0.0;  // in [0, 1)
  };
  struct FlashParams {
    double at = 0.0;      // flash onset time
    double mult = 1.0;    // peak multiplier (>= 1)
    double ramp = 0.0;    // climb duration (>= 0)
    double hold = 0.0;    // plateau duration (>= 0)
    double decay = 0.0;   // fall duration (>= 0)
  };

  ModulatedPoissonProcess(double base_rate, const RampParams& ramp);
  ModulatedPoissonProcess(double base_rate, const FlashParams& flash);

  double next_gap(sim::Rng& rng) override;
  // Long-run mean: the sinusoid averages out; the flash transient is
  // measure-zero in the long run. Both report the base rate.
  double mean_gap() const override { return 1.0 / base_rate_; }
  std::string describe() const override;
  void reset() override { now_ = 0.0; }

  // The instantaneous rate at absolute time t (exposed for tests).
  double rate_at(double t) const;

 private:
  Shape shape_;
  double base_rate_;
  double max_rate_;
  RampParams ramp_{};
  FlashParams flash_{};
  double now_ = 0.0;
};

}  // namespace stale::workload
