// Trace-v2: the versioned on-disk format closing the live<->sim loop.
// `staleload_lb --record DIR` writes one directory per recording; the sim
// replays it with `staleload_sim --workload replay:DIR`; `tools/playdiff`
// diffs the two metric files. Layout:
//
//   DIR/manifest.txt    key/value header ("staleload-trace v2" first line):
//                       backends, update_period, schedule, policy, seed,
//                       duration, arrivals (record-count cross-check)
//   DIR/arrivals.trace  one completed job per line, "<arrival> <size>" —
//                       the workload/trace.h text format, times relative to
//                       the first arrival, sizes the service times the
//                       backends actually drew
//   DIR/loads.csv       "time,server,queue_len" — every LOAD report the
//                       dispatcher applied to its board (diagnostics; the
//                       sim regenerates board state from its own queues)
//   DIR/metrics.json    obs::ReplayMetrics of the live run (written by the
//                       recorder's owner, read by playdiff)
//
// ReplayProcess feeds the recorded inter-arrival gaps through the sim driver
// deterministically: it draws nothing from the Rng, so a replayed experiment
// is bit-identical run to run and across --jobs values.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "workload/arrival_process.h"
#include "workload/trace.h"

namespace stale::workload {

struct ReplayManifest {
  int version = 2;
  int backends = 0;
  double update_period = 1.0;
  std::string schedule = "periodic";
  std::string policy = "basic_li";
  std::uint64_t seed = 0;
  double duration = 0.0;       // recorded wall span, seconds
  std::uint64_t arrivals = 0;  // rows in arrivals.trace
};

// A LOAD report as the dispatcher's board saw it.
struct LoadEvent {
  double time = 0.0;
  int server = 0;
  int queue_len = 0;
};

struct ReplayTrace {
  ReplayManifest manifest;
  std::vector<TraceRecord> arrivals;  // times relative to recording start
  std::vector<LoadEvent> loads;

  // Empirical aggregate arrival rate over the recorded span.
  double empirical_rate() const;
};

void write_manifest(std::ostream& out, const ReplayManifest& manifest);
// Throws std::invalid_argument on a malformed or wrong-version manifest.
ReplayManifest parse_manifest(std::istream& in);

void write_loads(std::ostream& out, const std::vector<LoadEvent>& loads);
std::vector<LoadEvent> parse_loads(std::istream& in);

void write_arrivals(std::ostream& out,
                    const std::vector<TraceRecord>& arrivals);

// Loads DIR/{manifest.txt,arrivals.trace,loads.csv}; metrics.json is not
// read here (it belongs to playdiff). Throws std::runtime_error on missing
// files, std::invalid_argument on malformed content or an arrivals-count
// mismatch against the manifest.
ReplayTrace load_replay_trace(const std::string& dir);

// File names inside a trace-v2 directory.
extern const char kManifestFile[];
extern const char kArrivalsFile[];
extern const char kLoadsFile[];
extern const char kMetricsFile[];

// Replays recorded absolute arrival times as inter-arrival gaps. Ignores the
// Rng entirely (zero draws). Wraps like TraceProcess when asked for more
// gaps than the trace holds — counted, never silent; drivers cap the job
// count at the trace length so replays normally end before the wrap.
class ReplayProcess final : public ArrivalProcess {
 public:
  explicit ReplayProcess(const std::vector<TraceRecord>& records);

  double next_gap(sim::Rng&) override;
  double mean_gap() const override { return mean_gap_; }
  std::string describe() const override;
  void reset() override;
  std::uint64_t wraps() const override { return wraps_; }

 private:
  std::vector<double> gaps_;  // gaps_[0] is the first arrival's offset
  double mean_gap_;
  std::size_t next_ = 0;
  std::uint64_t wraps_ = 0;
};

}  // namespace stale::workload
