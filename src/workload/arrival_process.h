// Arrival processes. The open system model (paper Section 5) is a Poisson
// stream of aggregate rate lambda * n; the update-on-access experiments
// (Sections 5.3-5.4) decompose it into independent per-client streams.
#pragma once

#include <memory>
#include <string>

#include "sim/rng.h"

namespace stale::workload {

// A point process generating successive inter-arrival gaps.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  // The next inter-arrival gap (>= 0).
  virtual double next_gap(sim::Rng& rng) = 0;

  // Long-run mean gap.
  virtual double mean_gap() const = 0;

  virtual std::string describe() const = 0;
};

using ArrivalProcessPtr = std::unique_ptr<ArrivalProcess>;

// Poisson process with the given rate (exponential gaps of mean 1/rate).
class PoissonProcess final : public ArrivalProcess {
 public:
  explicit PoissonProcess(double rate);

  double next_gap(sim::Rng& rng) override;
  double mean_gap() const override { return 1.0 / rate_; }
  std::string describe() const override;

 private:
  double rate_;
};

}  // namespace stale::workload
