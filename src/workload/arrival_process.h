// Arrival processes. The open system model (paper Section 5) is a Poisson
// stream of aggregate rate lambda * n; the update-on-access experiments
// (Sections 5.3-5.4) decompose it into independent per-client streams.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/rng.h"

namespace stale::workload {

// A point process generating successive inter-arrival gaps.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  // The next inter-arrival gap (>= 0).
  virtual double next_gap(sim::Rng& rng) = 0;

  // Long-run mean gap.
  virtual double mean_gap() const = 0;

  virtual std::string describe() const = 0;

  // Rewinds internal state (cursors, modulation clocks) to the construction
  // state so one process object can drive several trials without leaking the
  // previous trial's position. Memoryless processes need no action.
  virtual void reset() {}

  // How many times a finite source (a recorded trace) was exhausted and
  // looped back to its start. Always 0 for generative processes. Callers
  // surface a nonzero count as a warning: a wrapped trace is a documented
  // approximation, not a fresh sample.
  virtual std::uint64_t wraps() const { return 0; }
};

using ArrivalProcessPtr = std::unique_ptr<ArrivalProcess>;

// Poisson process with the given rate (exponential gaps of mean 1/rate).
class PoissonProcess final : public ArrivalProcess {
 public:
  explicit PoissonProcess(double rate);

  double next_gap(sim::Rng& rng) override;
  double mean_gap() const override { return 1.0 / rate_; }
  std::string describe() const override;

 private:
  double rate_;
};

}  // namespace stale::workload
