// Individual-update board (extension; the model Mitzenmacher examined and
// the paper omitted "for compactness"): each server refreshes its own board
// entry on its own period-T schedule, with per-server phase offsets, so
// entries have different ages. LI policies receive the mean entry age.
#pragma once

#include <cstdint>
#include <vector>

#include "queueing/cluster.h"
#include "sim/rng.h"

namespace stale::loadinfo {

class IndividualBoard {
 public:
  // Offsets are drawn uniformly in [0, T) from `rng` so servers are
  // de-phased, mirroring staggered heartbeat timers in real systems.
  IndividualBoard(int num_servers, double update_interval, sim::Rng& rng);

  // Refreshes every entry whose boundary passed by time `t`.
  void sync(queueing::Cluster& cluster, double t);

  const std::vector<int>& loads() const { return snapshot_; }
  double entry_age(int server, double t) const {
    return t - last_refresh_[static_cast<std::size_t>(server)];
  }
  double mean_age(double t) const;
  std::uint64_t version() const { return version_; }

 private:
  double interval_;
  std::vector<double> next_refresh_;
  std::vector<double> last_refresh_;
  std::vector<int> snapshot_;
  std::uint64_t version_ = 1;
};

}  // namespace stale::loadinfo
