// Individual-update board (extension; the model Mitzenmacher examined and
// the paper omitted "for compactness"): each server refreshes its own board
// entry on its own period-T schedule, with per-server phase offsets, so
// entries have different ages. LI policies receive the mean entry age.
//
// Under fault injection a server's heartbeat can be lost (its entry keeps
// aging past T) or delayed (measured on schedule, visible later; deliveries
// from one server are FIFO).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "loadinfo/refresh_faults.h"
#include "obs/trace_sink.h"
#include "queueing/cluster.h"
#include "sim/level_histogram.h"
#include "sim/rng.h"

namespace stale::loadinfo {

class IndividualBoard {
 public:
  // Offsets are drawn uniformly in [0, T) from `rng` so servers are
  // de-phased, mirroring staggered heartbeat timers in real systems.
  IndividualBoard(int num_servers, double update_interval, sim::Rng& rng);

  // Refreshes every entry whose boundary passed by time `t`. `faults`
  // (nullable) may drop or delay individual heartbeats.
  void sync(queueing::Cluster& cluster, double t,
            RefreshFaults* faults = nullptr);

  const std::vector<int>& loads() const { return snapshot_; }
  double entry_age(int server, double t) const {
    return t - last_refresh_[static_cast<std::size_t>(server)];
  }
  double mean_age(double t) const;
  std::uint64_t version() const { return version_; }

  // Earliest pending heartbeat boundary across servers. Multi-board drivers
  // use this to interleave several boards' refreshes in global time order.
  double next_refresh_at() const;

  // Turns on the bucketed snapshot: level_index() stays in sync with
  // loads(), maintained O(1) per published heartbeat (each heartbeat moves
  // exactly one server between levels). Off by default so vector-path runs
  // pay nothing.
  void enable_level_index() {
    track_levels_ = true;
    level_index_.build(snapshot_);
  }
  const sim::LevelIndex& level_index() const { return level_index_; }
  // Mutable handle for the health layer's quarantine bookkeeping (the churn
  // trial retires evicted servers and readmits them on rejoin); per-heartbeat
  // maintenance keeps retired servers out of the histogram
  // (sim::LevelIndex::update only records their level).
  sim::LevelIndex& level_index_mut() { return level_index_; }

  // Attaches a trace sink notified per published heartbeat (on_board_refresh
  // with the whole visible snapshot) and per injected drop/delay
  // (on_refresh_fault with the server index). Pure observer; nullptr
  // detaches.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

 private:
  struct PendingHeartbeat {
    double publish;   // when the entry becomes visible
    double measured;  // when the queue length was sampled
    int value;
  };

  double interval_;
  std::vector<double> next_refresh_;
  std::vector<double> last_refresh_;
  std::vector<int> snapshot_;
  std::vector<std::deque<PendingHeartbeat>> pending_;  // per server, FIFO
  std::uint64_t version_ = 1;
  bool track_levels_ = false;
  sim::LevelIndex level_index_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace stale::loadinfo
