// Delay distributions for the continuous-update model (paper Section 5.2,
// Figure 6): the four families with common mean T, in order of increasing
// variance — constant(T), uniform(T/2, 3T/2), uniform(0, 2T), exponential(T).
#pragma once

#include <memory>
#include <string>

#include "sim/distributions.h"

namespace stale::loadinfo {

enum class DelayKind {
  kConstant,       // delay == T
  kUniformHalf,    // uniform(T/2, 3T/2)
  kUniformFull,    // uniform(0, 2T)
  kExponential,    // exponential(T)
};

// Parses "constant", "uniform_half", "uniform_full", "exponential".
DelayKind parse_delay_kind(const std::string& name);
std::string delay_kind_name(DelayKind kind);

// Builds the concrete distribution for a mean delay of `mean_delay`.
sim::DistributionPtr make_delay_distribution(DelayKind kind,
                                             double mean_delay);

}  // namespace stale::loadinfo
