#include "loadinfo/delay_distribution.h"

#include <stdexcept>

namespace stale::loadinfo {

DelayKind parse_delay_kind(const std::string& name) {
  if (name == "constant") return DelayKind::kConstant;
  if (name == "uniform_half") return DelayKind::kUniformHalf;
  if (name == "uniform_full") return DelayKind::kUniformFull;
  if (name == "exponential") return DelayKind::kExponential;
  throw std::invalid_argument("parse_delay_kind: unknown kind '" + name + "'");
}

std::string delay_kind_name(DelayKind kind) {
  switch (kind) {
    case DelayKind::kConstant:
      return "constant";
    case DelayKind::kUniformHalf:
      return "uniform_half";
    case DelayKind::kUniformFull:
      return "uniform_full";
    case DelayKind::kExponential:
      return "exponential";
  }
  throw std::logic_error("delay_kind_name: bad enum");
}

sim::DistributionPtr make_delay_distribution(DelayKind kind,
                                             double mean_delay) {
  if (mean_delay < 0.0) {
    throw std::invalid_argument("make_delay_distribution: negative mean");
  }
  switch (kind) {
    case DelayKind::kConstant:
      return std::make_unique<sim::Deterministic>(mean_delay);
    case DelayKind::kUniformHalf:
      return std::make_unique<sim::Uniform>(0.5 * mean_delay,
                                            1.5 * mean_delay);
    case DelayKind::kUniformFull:
      return std::make_unique<sim::Uniform>(0.0, 2.0 * mean_delay);
    case DelayKind::kExponential:
      if (mean_delay == 0.0) return std::make_unique<sim::Deterministic>(0.0);
      return std::make_unique<sim::Exponential>(mean_delay);
  }
  throw std::logic_error("make_delay_distribution: bad enum");
}

}  // namespace stale::loadinfo
