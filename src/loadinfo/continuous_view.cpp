#include "loadinfo/continuous_view.h"

#include <algorithm>
#include <stdexcept>

#include "check/contracts.h"

namespace stale::loadinfo {

ContinuousView::ContinuousView(DelayKind kind, double mean_delay,
                               bool know_actual_age,
                               double extra_delay_allowance)
    : mean_delay_(mean_delay),
      know_actual_age_(know_actual_age),
      max_delay_(history_window_for(kind, mean_delay) + extra_delay_allowance),
      delay_(make_delay_distribution(kind, mean_delay)) {
  if (mean_delay < 0.0) {
    throw std::invalid_argument("ContinuousView: negative mean delay");
  }
  if (extra_delay_allowance < 0.0) {
    throw std::invalid_argument("ContinuousView: negative delay allowance");
  }
}

double ContinuousView::history_window_for(DelayKind kind, double mean_delay) {
  switch (kind) {
    case DelayKind::kConstant:
      return mean_delay;
    case DelayKind::kUniformHalf:
      return 1.5 * mean_delay;
    case DelayKind::kUniformFull:
      return 2.0 * mean_delay;
    case DelayKind::kExponential:
      return 40.0 * mean_delay;  // P(d > 40T) ~ 4e-18: clamping unobservable
  }
  throw std::logic_error("history_window_for: bad enum");
}

void ContinuousView::observe(const queueing::Cluster& cluster, double t,
                             sim::Rng& rng, RefreshFaults* faults) {
  if (faults != nullptr && faults->drop_refresh()) {
    // The refresh never arrived: the client reuses the last view it got,
    // which has aged further. Before any successful refresh the view is the
    // empty-cluster prior from time 0.
    if (loads_.empty()) {
      loads_.assign(static_cast<std::size_t>(cluster.size()), 0);
      if (track_levels_) level_index_.build(loads_);
    }
    actual_delay_ = t - last_measured_;
    reported_age_ =
        know_actual_age_ ? actual_delay_ : std::min(mean_delay_, t);
    ++version_;
    if (trace_) {
      trace_->on_refresh_fault(t, obs::FaultTraceEvent::kRefreshLost, -1);
    }
    return;
  }
  double d = delay_->sample(rng);
  if (faults != nullptr) d += faults->refresh_delay();
  d = std::min(d, max_delay_);
  d = std::min(d, t);  // nothing existed before time 0: clamp early requests
  actual_delay_ = d;
  last_measured_ = t - d;
  reported_age_ = know_actual_age_ ? d : std::min(mean_delay_, t);
  cluster.loads_at(t - d, loads_);
  STALE_DCHECK(actual_delay_ >= 0.0 && last_measured_ <= t &&
               loads_.size() == static_cast<std::size_t>(cluster.size()));
  ++version_;
  if (track_levels_) level_index_.build(loads_);
  if (trace_) trace_->on_board_refresh(t, last_measured_, version_, loads_);
}

}  // namespace stale::loadinfo
