#include "loadinfo/individual_board.h"

#include <stdexcept>

namespace stale::loadinfo {

IndividualBoard::IndividualBoard(int num_servers, double update_interval,
                                 sim::Rng& rng)
    : interval_(update_interval) {
  if (num_servers <= 0) {
    throw std::invalid_argument("IndividualBoard: need at least one server");
  }
  if (update_interval <= 0.0) {
    throw std::invalid_argument("IndividualBoard: interval must be > 0");
  }
  snapshot_.assign(static_cast<std::size_t>(num_servers), 0);
  last_refresh_.assign(static_cast<std::size_t>(num_servers), 0.0);
  next_refresh_.resize(static_cast<std::size_t>(num_servers));
  for (double& next : next_refresh_) {
    next = rng.next_double() * update_interval;
  }
}

void IndividualBoard::sync(queueing::Cluster& cluster, double t) {
  // Refresh entries in global time order so that each snapshot reads the
  // cluster exactly at its boundary.
  while (true) {
    int due = -1;
    double due_time = t;
    for (std::size_t i = 0; i < next_refresh_.size(); ++i) {
      if (next_refresh_[i] <= due_time) {
        due = static_cast<int>(i);
        due_time = next_refresh_[i];
      }
    }
    if (due < 0) break;
    cluster.advance_to(due_time);
    snapshot_[static_cast<std::size_t>(due)] =
        cluster.loads()[static_cast<std::size_t>(due)];
    last_refresh_[static_cast<std::size_t>(due)] = due_time;
    next_refresh_[static_cast<std::size_t>(due)] = due_time + interval_;
    ++version_;
  }
}

double IndividualBoard::mean_age(double t) const {
  double total = 0.0;
  for (double last : last_refresh_) total += t - last;
  return total / static_cast<double>(last_refresh_.size());
}

}  // namespace stale::loadinfo
