#include "loadinfo/individual_board.h"

#include <algorithm>
#include <stdexcept>

#include "check/contracts.h"

namespace stale::loadinfo {

IndividualBoard::IndividualBoard(int num_servers, double update_interval,
                                 sim::Rng& rng)
    : interval_(update_interval) {
  if (num_servers <= 0) {
    throw std::invalid_argument("IndividualBoard: need at least one server");
  }
  if (update_interval <= 0.0) {
    throw std::invalid_argument("IndividualBoard: interval must be > 0");
  }
  snapshot_.assign(static_cast<std::size_t>(num_servers), 0);
  last_refresh_.assign(static_cast<std::size_t>(num_servers), 0.0);
  pending_.resize(static_cast<std::size_t>(num_servers));
  next_refresh_.resize(static_cast<std::size_t>(num_servers));
  for (double& next : next_refresh_) {
    next = rng.next_double() * update_interval;
  }
}

void IndividualBoard::sync(queueing::Cluster& cluster, double t,
                           RefreshFaults* faults) {
  // Take measurements in global time order so that each heartbeat reads the
  // cluster exactly at its boundary.
  while (true) {
    int due = -1;
    double due_time = t;
    for (std::size_t i = 0; i < next_refresh_.size(); ++i) {
      if (next_refresh_[i] <= due_time) {
        due = static_cast<int>(i);
        due_time = next_refresh_[i];
      }
    }
    if (due < 0) break;
    STALE_DCHECK(due_time <= t);
    const auto s = static_cast<std::size_t>(due);
    if (faults == nullptr || !faults->drop_refresh()) {
      cluster.advance_to(due_time);
      const double delay = faults == nullptr ? 0.0 : faults->refresh_delay();
      if (trace_ && delay > 0.0) {
        trace_->on_refresh_fault(due_time,
                                 obs::FaultTraceEvent::kRefreshDelayed, due);
      }
      // FIFO per server: a heartbeat never overtakes its predecessor.
      const double publish = std::max(
          due_time + delay,
          pending_[s].empty() ? 0.0 : pending_[s].back().publish);
      pending_[s].push_back({publish, due_time, cluster.loads()[s]});
    } else if (trace_) {
      trace_->on_refresh_fault(due_time, obs::FaultTraceEvent::kRefreshLost,
                               due);
    }
    next_refresh_[s] = due_time + interval_;
  }
  // Publish everything that has arrived by t.
  for (std::size_t s = 0; s < pending_.size(); ++s) {
    while (!pending_[s].empty() && pending_[s].front().publish <= t) {
      STALE_DCHECK(pending_[s].front().measured <=
                   pending_[s].front().publish);
      snapshot_[s] = pending_[s].front().value;
      last_refresh_[s] = pending_[s].front().measured;
      const double publish = pending_[s].front().publish;
      pending_[s].pop_front();
      ++version_;
      if (track_levels_) {
        level_index_.update(static_cast<int>(s), snapshot_[s]);
      }
      if (trace_) {
        trace_->on_board_refresh(publish, last_refresh_[s], version_,
                                 snapshot_);
      }
    }
  }
}

double IndividualBoard::next_refresh_at() const {
  double earliest = next_refresh_.front();
  for (double next : next_refresh_) earliest = std::min(earliest, next);
  return earliest;
}

double IndividualBoard::mean_age(double t) const {
  double total = 0.0;
  for (double last : last_refresh_) total += t - last;
  return total / static_cast<double>(last_refresh_.size());
}

}  // namespace stale::loadinfo
