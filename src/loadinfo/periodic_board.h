// Periodic-update bulletin board (paper Section 3.1): every T time units the
// board is refreshed with the true queue lengths of all servers; every
// arrival during the following phase sees that same snapshot. Phase k covers
// [k*T, (k+1)*T) with the snapshot taken at k*T.
#pragma once

#include <cstdint>
#include <vector>

#include "queueing/cluster.h"

namespace stale::loadinfo {

class PeriodicBoard {
 public:
  // `update_interval` is T. The board's first snapshot is taken at time 0
  // (an empty cluster).
  PeriodicBoard(int num_servers, double update_interval);

  // Brings the board up to date for an observation at time `t`, refreshing
  // it at every phase boundary in (last_refresh, t]. The cluster is advanced
  // to each boundary so snapshots are exact.
  void sync(queueing::Cluster& cluster, double t);

  const std::vector<int>& loads() const { return snapshot_; }
  double phase_start() const { return phase_start_; }
  double phase_length() const { return interval_; }
  double age(double t) const { return t - phase_start_; }
  // Bumped on every refresh; policies key caches on it.
  std::uint64_t version() const { return version_; }

 private:
  double interval_;
  double phase_start_ = 0.0;
  std::uint64_t version_ = 1;
  std::vector<int> snapshot_;
};

}  // namespace stale::loadinfo
