// Periodic-update bulletin board (paper Section 3.1): every T time units the
// board is refreshed with the true queue lengths of all servers; every
// arrival during the following phase sees that same snapshot. Phase k covers
// [k*T, (k+1)*T) with the snapshot taken at k*T.
//
// Under fault injection a refresh can be lost (the board keeps showing the
// previous snapshot, whose age then exceeds T — the dispatcher herds exactly
// as if it trusted fresh-enough information) or delayed (measured at the
// boundary, published later; deliveries are FIFO, like updates pushed over
// one ordered channel). age() is always the time since the *measurement* of
// the currently visible snapshot, which is what a timestamped board entry
// lets a dispatcher compute.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "loadinfo/refresh_faults.h"
#include "obs/trace_sink.h"
#include "queueing/cluster.h"
#include "sim/level_histogram.h"

namespace stale::loadinfo {

class PeriodicBoard {
 public:
  // `update_interval` is T. The board's first snapshot is taken at time 0
  // (an empty cluster). `phase_offset` staggers the refresh schedule: the
  // boundaries fall at offset + k*T (offset 0, the default, reproduces the
  // classic k*T schedule bit-for-bit). Multi-dispatcher runs de-phase their
  // boards with offset = d*T/D so the dispatchers do not all go stale in
  // lockstep.
  PeriodicBoard(int num_servers, double update_interval,
                double phase_offset = 0.0);

  // Brings the board up to date for an observation at time `t`, refreshing
  // it at every phase boundary in (last_refresh, t]. The cluster is advanced
  // to each boundary so snapshots are exact. `faults` (nullable) may drop or
  // delay individual refreshes.
  void sync(queueing::Cluster& cluster, double t,
            RefreshFaults* faults = nullptr);

  const std::vector<int>& loads() const { return snapshot_; }
  // Time the visible snapshot was measured (== the phase start when every
  // refresh arrives intact and on time).
  double phase_start() const { return measured_at_; }
  double phase_length() const { return interval_; }
  double age(double t) const { return t - measured_at_; }
  // Bumped on every refresh; policies key caches on it.
  std::uint64_t version() const { return version_; }

  // Time of the next measurement boundary. Multi-board drivers use this to
  // interleave several boards' refreshes in global time order (syncing board
  // A past board B's earlier boundary would let B measure a future cluster).
  double next_refresh_at() const { return next_boundary_; }

  // Turns on the bucketed snapshot: level_index() stays in sync with
  // loads(), rebuilt O(n) once per publish (amortized over a whole phase of
  // O(#levels) dispatches). Off by default so vector-path runs pay nothing.
  void enable_level_index() {
    track_levels_ = true;
    level_index_.build(snapshot_);
  }
  const sim::LevelIndex& level_index() const { return level_index_; }
  // Mutable handle for the health layer's quarantine bookkeeping (the churn
  // trial retires evicted servers from the index and readmits them on
  // rejoin); the board itself never retires anyone, and its per-publish
  // rebuild preserves the retirement mask (sim::LevelIndex::build).
  sim::LevelIndex& level_index_mut() { return level_index_; }

  // Attaches a trace sink notified on every publish (on_board_refresh) and
  // every injected drop/delay (on_refresh_fault). Pure observer; nullptr
  // detaches.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

 private:
  struct PendingRefresh {
    double publish;   // when the snapshot becomes visible
    double measured;  // when it was measured (the phase boundary)
    std::vector<int> snapshot;
  };

  double interval_;
  double next_boundary_;
  double measured_at_ = 0.0;
  std::uint64_t version_ = 1;
  std::vector<int> snapshot_;
  std::deque<PendingRefresh> pending_;  // FIFO, publish times non-decreasing
  bool track_levels_ = false;
  sim::LevelIndex level_index_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace stale::loadinfo
