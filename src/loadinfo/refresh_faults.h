// Degraded-refresh model the information models consult when a fault layer
// is active: a bulletin-board refresh (or a client's view) can be lost
// outright, or arrive only after extra network delay. The three staleness
// models accept a nullable RefreshFaults* so perfect-refresh runs pay
// nothing; fault::FaultInjector implements the interface with deterministic
// seeded draws.
#pragma once

namespace stale::loadinfo {

class RefreshFaults {
 public:
  virtual ~RefreshFaults() = default;

  // True: this refresh never arrives; the consumer keeps its old (aging)
  // information. Drawn once per refresh opportunity.
  virtual bool drop_refresh() = 0;

  // Extra latency between a refresh being measured and becoming visible
  // (0 for no delay faults). Drawn once per surviving refresh.
  virtual double refresh_delay() = 0;
};

}  // namespace stale::loadinfo
