#include "loadinfo/periodic_board.h"

#include <cmath>
#include <stdexcept>

namespace stale::loadinfo {

PeriodicBoard::PeriodicBoard(int num_servers, double update_interval)
    : interval_(update_interval) {
  if (num_servers <= 0) {
    throw std::invalid_argument("PeriodicBoard: need at least one server");
  }
  if (update_interval <= 0.0) {
    throw std::invalid_argument("PeriodicBoard: update interval must be > 0");
  }
  snapshot_.assign(static_cast<std::size_t>(num_servers), 0);
}

void PeriodicBoard::sync(queueing::Cluster& cluster, double t) {
  if (t < phase_start_) {
    throw std::invalid_argument("PeriodicBoard::sync: time went backwards");
  }
  // Step through the (usually zero or one) phase boundaries crossed since the
  // last sync. Stepping rather than jumping keeps every intermediate
  // snapshot exact even when several empty phases pass between arrivals.
  while (t - phase_start_ >= interval_) {
    const double boundary = phase_start_ + interval_;
    cluster.advance_to(boundary);
    const auto loads = cluster.loads();
    snapshot_.assign(loads.begin(), loads.end());
    phase_start_ = boundary;
    ++version_;
  }
}

}  // namespace stale::loadinfo
