#include "loadinfo/periodic_board.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/contracts.h"

namespace stale::loadinfo {

PeriodicBoard::PeriodicBoard(int num_servers, double update_interval,
                             double phase_offset)
    : interval_(update_interval),
      next_boundary_(phase_offset > 0.0 ? phase_offset : update_interval) {
  if (num_servers <= 0) {
    throw std::invalid_argument("PeriodicBoard: need at least one server");
  }
  if (update_interval <= 0.0) {
    throw std::invalid_argument("PeriodicBoard: update interval must be > 0");
  }
  if (phase_offset < 0.0 || phase_offset >= update_interval) {
    throw std::invalid_argument(
        "PeriodicBoard: phase offset must be in [0, update_interval)");
  }
  snapshot_.assign(static_cast<std::size_t>(num_servers), 0);
}

void PeriodicBoard::sync(queueing::Cluster& cluster, double t,
                         RefreshFaults* faults) {
  if (t < measured_at_) {
    throw std::invalid_argument("PeriodicBoard::sync: time went backwards");
  }
  // Step through the (usually zero or one) phase boundaries crossed since the
  // last sync. Stepping rather than jumping keeps every intermediate
  // snapshot exact even when several empty phases pass between arrivals.
  while (next_boundary_ <= t) {
    const double boundary = next_boundary_;
    cluster.advance_to(boundary);
    if (faults == nullptr || !faults->drop_refresh()) {
      const double delay = faults == nullptr ? 0.0 : faults->refresh_delay();
      if (trace_ && delay > 0.0) {
        trace_->on_refresh_fault(boundary, obs::FaultTraceEvent::kRefreshDelayed,
                                 -1);
      }
      // FIFO delivery: a refresh never overtakes its predecessor.
      const double publish =
          std::max(boundary + delay,
                   pending_.empty() ? 0.0 : pending_.back().publish);
      const auto loads = cluster.loads();
      pending_.push_back(
          {publish, boundary, std::vector<int>(loads.begin(), loads.end())});
    } else if (trace_) {
      trace_->on_refresh_fault(boundary, obs::FaultTraceEvent::kRefreshLost,
                               -1);
    }
    next_boundary_ += interval_;
  }
  STALE_DCHECK(next_boundary_ > t);
  // Publish everything that has arrived by t (in measurement order).
  while (!pending_.empty() && pending_.front().publish <= t) {
    STALE_DCHECK(pending_.front().measured <= pending_.front().publish);
    snapshot_ = std::move(pending_.front().snapshot);
    measured_at_ = pending_.front().measured;
    const double publish = pending_.front().publish;
    pending_.pop_front();
    ++version_;
    if (track_levels_) level_index_.build(snapshot_);
    if (trace_) {
      trace_->on_board_refresh(publish, measured_at_, version_, snapshot_);
    }
  }
}

}  // namespace stale::loadinfo
