// Continuous-update view (paper Sections 3.1 and 5.2): each arriving request
// sees the cluster's state as it was `d` time units ago, with `d` drawn per
// request from a delay distribution of mean T. Depending on configuration,
// the policy is told either the mean delay T (Figure 6: "clients only know
// the average") or the actual sampled `d` (Figure 7: "clients know the age
// of information actually encountered").
//
// Under fault injection a request's refresh can be lost — the client is stuck
// with the previous view it obtained, whose age keeps growing across
// consecutive losses — or stretched by extra network delay added to `d`.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "loadinfo/delay_distribution.h"
#include "loadinfo/refresh_faults.h"
#include "obs/trace_sink.h"
#include "queueing/cluster.h"
#include "sim/level_histogram.h"
#include "sim/rng.h"

namespace stale::loadinfo {

class ContinuousView {
 public:
  // `mean_delay` is T. The cluster must be constructed with a history window
  // of at least history_window_for(kind, mean_delay) plus any
  // `extra_delay_allowance` for fault-stretched delays.
  ContinuousView(DelayKind kind, double mean_delay, bool know_actual_age,
                 double extra_delay_allowance = 0.0);

  // Recommended cluster history window for exact past-load queries. For the
  // unbounded exponential delay this caps the support at a quantile so far
  // out (40 mean delays, P ~ 4e-18) that clamping is unobservable.
  static double history_window_for(DelayKind kind, double mean_delay);

  // Samples this request's delay and materializes the view for an arrival at
  // time `t`. Returns the loads via loads(); reported_age() is what the
  // policy is told. `faults` (nullable) may drop the refresh (the previous
  // view is reused, older) or stretch the delay.
  void observe(const queueing::Cluster& cluster, double t, sim::Rng& rng,
               RefreshFaults* faults = nullptr);

  const std::vector<int>& loads() const { return loads_; }
  double reported_age() const { return reported_age_; }
  double actual_delay() const { return actual_delay_; }
  std::uint64_t version() const { return version_; }

  // Turns on the bucketed snapshot: level_index() is rebuilt alongside every
  // materialized view. Per-request views change wholesale (a fresh past
  // instant each observe), so the rebuild is O(n) per request — the bucketed
  // win under this model comes from the O(#levels) dispatch kernels, not
  // from snapshot maintenance. Off by default.
  void enable_level_index() {
    track_levels_ = true;
    level_index_.build(loads_);
  }
  const sim::LevelIndex& level_index() const { return level_index_; }

  // Attaches a trace sink notified per materialized view (on_board_refresh;
  // one per request under this model) and per dropped refresh
  // (on_refresh_fault). Pure observer; nullptr detaches. Long traced runs
  // can disable snapshot copies via RecorderOptions.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

 private:
  double mean_delay_;
  bool know_actual_age_;
  double max_delay_;
  sim::DistributionPtr delay_;
  std::vector<int> loads_;
  double reported_age_ = 0.0;
  double actual_delay_ = 0.0;
  double last_measured_ = 0.0;  // instant the current view reflects
  std::uint64_t version_ = 0;
  bool track_levels_ = false;
  sim::LevelIndex level_index_;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace stale::loadinfo
