#include "runtime/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>
#include <utility>

namespace stale::runtime {

namespace {

thread_local bool t_on_worker_thread = false;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    check::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    check::MutexLock lock(mutex_);
    // Submitting during shutdown is allowed (a draining task may enqueue
    // follow-up work); workers only exit once the queue is empty.
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::on_worker_thread() { return t_on_worker_thread; }

int ThreadPool::default_jobs() {
  if (const char* env = std::getenv("STALE_JOBS")) {
    try {
      const int jobs = std::stoi(env);
      if (jobs >= 1) return jobs;
    } catch (const std::exception&) {
      // Malformed STALE_JOBS falls through to hardware_concurrency.
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      check::MutexLock lock(mutex_);
      while (!stopping_ && tasks_.empty()) cv_.wait(mutex_);
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

int resolve_jobs(int jobs) {
  return jobs >= 1 ? jobs : ThreadPool::default_jobs();
}

void parallel_for_each(ThreadPool& pool, std::size_t count,
                       const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || pool.size() <= 1 || ThreadPool::on_worker_thread()) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Shared by the shards; heap-allocated so a shard outliving an exceptional
  // early return in the caller can never touch a dead stack frame.
  struct Loop {
    const std::function<void(std::size_t)>* fn;
    std::size_t count;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    check::Mutex mutex;
    check::CondVar done_cv;
    std::size_t shards_left STALE_GUARDED_BY(mutex);
    std::exception_ptr error STALE_GUARDED_BY(mutex);
  };
  const auto loop = std::make_shared<Loop>();
  loop->fn = &fn;
  loop->count = count;

  const std::size_t shards =
      std::min(static_cast<std::size_t>(pool.size()), count);
  {
    check::MutexLock lock(loop->mutex);
    loop->shards_left = shards;
  }

  const auto run_shard = [loop] {
    for (;;) {
      const std::size_t i = loop->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= loop->count || loop->failed.load(std::memory_order_relaxed)) {
        break;
      }
      try {
        (*loop->fn)(i);
      } catch (...) {
        check::MutexLock lock(loop->mutex);
        if (!loop->error) loop->error = std::current_exception();
        loop->failed.store(true, std::memory_order_relaxed);
      }
    }
    check::MutexLock lock(loop->mutex);
    if (--loop->shards_left == 0) loop->done_cv.notify_all();
  };

  for (std::size_t s = 0; s < shards; ++s) pool.submit(run_shard);

  check::MutexLock lock(loop->mutex);
  while (loop->shards_left != 0) loop->done_cv.wait(loop->mutex);
  if (loop->error) std::rethrow_exception(loop->error);
}

}  // namespace stale::runtime
