// Fixed-size thread pool and the parallel_for_each helper used by the
// driver to fan trials and sweep cells out across cores.
//
// Design notes (see DESIGN.md "Runtime layer"):
//  * The pool is a plain FIFO work queue; tasks are type-erased
//    std::function<void()> thunks.
//  * parallel_for_each hands out indices from a shared atomic counter, so
//    uneven per-item cost (e.g. T=0.1 vs T=128 sweep cells) load-balances
//    automatically.
//  * Nested-submit safety: calling parallel_for_each from inside a pool
//    worker runs the loop inline on that worker instead of enqueueing —
//    blocking a worker on its own pool's queue could deadlock. This is what
//    makes `run_sweep` (parallel over cells) compose with `run_experiment`
//    (parallel over trials) without oversubscription.
//  * Exceptions: the first exception thrown by an item is captured, the
//    remaining items are abandoned as fast as possible, and the exception is
//    rethrown on the calling thread once all in-flight items have drained.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "check/sync.h"
#include "check/thread_annotations.h"

namespace stale::runtime {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  // Joins all workers. Pending tasks are still executed before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues a task. Safe to call from worker threads (nested submit).
  void submit(std::function<void()> task);

  // True when the calling thread is a worker of *any* ThreadPool. Used to
  // run nested parallel loops inline instead of deadlocking on the queue.
  static bool on_worker_thread();

  // The default worker count: the STALE_JOBS environment variable when set
  // to a positive integer, else std::thread::hardware_concurrency() (>= 1).
  static int default_jobs();

 private:
  void worker_loop();

  // workers_ is written in the constructor and joined in the destructor
  // only — never touched under the lock — so it sits above the mutex.
  std::vector<std::thread> workers_;

  check::Mutex mutex_;
  check::CondVar cv_;
  std::deque<std::function<void()>> tasks_ STALE_GUARDED_BY(mutex_);
  bool stopping_ STALE_GUARDED_BY(mutex_) = false;
};

// Resolves a user-facing jobs knob: values >= 1 are taken literally,
// anything else (0, negative) means "auto" = ThreadPool::default_jobs().
int resolve_jobs(int jobs);

// Runs fn(0) .. fn(count - 1), distributing items across the pool's workers,
// and blocks until every item has finished. Items are claimed from a shared
// counter, so ordering across threads is arbitrary — callers must write
// results into pre-sized per-index slots, never append by arrival order.
// Runs inline (serially) when the pool has one worker, count <= 1, or the
// caller is itself a pool worker. The first exception thrown by any item is
// rethrown on the calling thread.
void parallel_for_each(ThreadPool& pool, std::size_t count,
                       const std::function<void(std::size_t)>& fn);

}  // namespace stale::runtime
