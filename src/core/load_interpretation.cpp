#include "core/load_interpretation.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace stale::core {

namespace {

// Below this K the closed form degenerates numerically; use the K -> 0 limit.
constexpr double kTinyArrivals = 1e-12;

void validate(std::span<const double> loads, double expected_arrivals) {
  if (loads.empty()) {
    throw std::invalid_argument("LI: empty load vector");
  }
  if (expected_arrivals < 0.0 || !std::isfinite(expected_arrivals)) {
    throw std::invalid_argument("LI: expected_arrivals must be finite, >= 0");
  }
  for (double b : loads) {
    if (b < 0.0 || !std::isfinite(b)) {
      throw std::invalid_argument("LI: loads must be finite, >= 0");
    }
  }
}

}  // namespace

std::vector<double> basic_li_probabilities_weighted(
    std::span<const double> loads, std::span<const double> rates,
    double expected_arrivals) {
  validate(loads, expected_arrivals);
  if (rates.size() != loads.size()) {
    throw std::invalid_argument("LI: rates/loads size mismatch");
  }
  for (double c : rates) {
    if (c <= 0.0 || !std::isfinite(c)) {
      throw std::invalid_argument("LI: rates must be finite, > 0");
    }
  }

  const std::size_t n = loads.size();
  // Sort server indices by normalized load b_i / c_i ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return loads[a] * rates[b] < loads[b] * rates[a];  // b_a/c_a < b_b/c_b
  });

  std::vector<double> p(n, 0.0);
  const double K = expected_arrivals;

  if (K <= kTinyArrivals) {
    // K -> 0 limit: all mass on the minimum-normalized-load set, shared
    // proportionally to service rate.
    const std::size_t first = order[0];
    const double min_norm = loads[first] / rates[first];
    double rate_sum = 0.0;
    for (std::size_t i : order) {
      if (loads[i] / rates[i] <= min_norm + 1e-12) rate_sum += rates[i];
    }
    for (std::size_t i : order) {
      if (loads[i] / rates[i] <= min_norm + 1e-12) p[i] = rates[i] / rate_sum;
    }
    return p;
  }

  // Find the largest prefix m (Eq. 3 generalized): K arrivals suffice to lift
  // servers order[0..m-1] to the normalized level of order[m-1].
  std::size_t m = 1;
  double load_sum = loads[order[0]];
  double rate_sum = rates[order[0]];
  for (std::size_t j = 2; j <= n; ++j) {
    const std::size_t idx = order[j - 1];
    const double cand_load_sum = load_sum + loads[idx];
    const double cand_rate_sum = rate_sum + rates[idx];
    const double level_j = loads[idx] / rates[idx];
    // Jobs needed to lift the first j servers to level_j:
    const double need = level_j * cand_rate_sum - cand_load_sum;
    if (need <= K) {
      m = j;
      load_sum = cand_load_sum;
      rate_sum = cand_rate_sum;
    } else {
      break;  // loads are sorted, so later prefixes need even more
    }
  }

  // Common level after distributing K arrivals over the first m servers.
  const double level = (load_sum + K) / rate_sum;
  for (std::size_t j = 0; j < m; ++j) {
    const std::size_t idx = order[j];
    p[idx] = (level * rates[idx] - loads[idx]) / K;
    // Guard tiny negative values from floating-point cancellation.
    if (p[idx] < 0.0) p[idx] = 0.0;
  }

  // Renormalize to absorb FP drift (sum is 1 up to rounding by construction).
  const double total = std::accumulate(p.begin(), p.end(), 0.0);
  for (double& v : p) v /= total;
  return p;
}

std::vector<double> basic_li_probabilities(std::span<const double> loads,
                                           double expected_arrivals) {
  static thread_local std::vector<double> unit_rates;
  unit_rates.assign(loads.size(), 1.0);
  return basic_li_probabilities_weighted(loads, unit_rates,
                                         expected_arrivals);
}

std::vector<double> basic_li_probabilities(std::span<const int> loads,
                                           double expected_arrivals) {
  std::vector<double> as_double(loads.begin(), loads.end());
  return basic_li_probabilities(as_double, expected_arrivals);
}

std::vector<double> hybrid_li_first_interval_probabilities(
    std::span<const double> loads) {
  validate(loads, 0.0);
  const double peak = *std::max_element(loads.begin(), loads.end());
  std::vector<double> p(loads.size(), 0.0);
  double deficit_sum = 0.0;
  for (std::size_t i = 0; i < loads.size(); ++i) {
    p[i] = peak - loads[i];
    deficit_sum += p[i];
  }
  if (deficit_sum <= 0.0) {
    // All loads equal: the first subinterval is empty; return uniform.
    std::fill(p.begin(), p.end(), 1.0 / static_cast<double>(loads.size()));
    return p;
  }
  for (double& v : p) v /= deficit_sum;
  return p;
}

double hybrid_li_first_interval_jobs(std::span<const double> loads) {
  validate(loads, 0.0);
  const double peak = *std::max_element(loads.begin(), loads.end());
  double total = 0.0;
  for (double b : loads) total += peak - b;
  return total;
}

}  // namespace stale::core
