// Bucketed (counted) LI kernels: the paper's dispatch math (Eqs. 2-5)
// evaluated over the level-occupancy histogram instead of the raw load
// vector. Every kernel here is O(#levels) where its vector-path twin in
// load_interpretation.cpp / aggressive_schedule.cpp is O(n) or O(n log n).
//
// Equivalence contract (asserted by the audit_* helpers below and by the
// property tests): for integer load vectors, each bucketed kernel assigns
// every level the same total probability mass as the vector kernel assigns
// to that level's members collectively — identical up to one final
// renormalization whose accumulation order differs (<= 1 ulp-scale drift).
// Per-*server* identity additionally holds wherever the vector kernel is
// itself symmetric within a level (Basic LI, Hybrid LI, and every aggressive
// group lookup; the lone exception is the aggressive stationary rule at
// K == 0, where the vector path's index tie-break picks a single server of
// the minimum class — same per-level mass either way).
//
// A "level mass vector" is dense, indexed by level 0..hist.max_level(), and
// sums to 1; LevelSampler turns one into a two-stage sampler (level first,
// then uniform member via LevelIndex).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/sampler.h"
#include "sim/level_histogram.h"

namespace stale::core {

// Basic LI (Eqs. 2-4) over the histogram: prefix water-fill across sorted
// distinct levels with multiplicities, exact int64 prefix sums. K == 0
// degenerates to mass 1 on the minimum level, as the vector kernel does.
std::vector<double> basic_li_level_masses(const sim::LevelHistogram& hist,
                                          double expected_arrivals);

// Aggressive LI (Eq. 5) over the histogram. With classes r = 1..R (distinct
// levels ascending, cumulative member counts M_r and cumulative load sums
// S_r), the vector schedule's C_j collapses to one fill cost per class
// boundary: B_r = M_r * level_{r+1} - S_r, strictly increasing — so group
// lookups are binary searches over R values instead of n.
struct BucketedAggressiveSchedule {
  std::vector<int> levels;                // distinct nonempty levels, ascending
  std::vector<std::int64_t> cum_counts;   // M_r, same indexing as levels
  std::vector<double> fill_costs;         // B_r for r = 1..R-1 (size R-1)
  std::int64_t total = 0;

  int classes() const { return static_cast<int>(levels.size()); }
};

BucketedAggressiveSchedule make_bucketed_aggressive_schedule(
    const sim::LevelHistogram& hist);

// Periodic rule: how many least-loaded servers are in the group after
// `jobs_elapsed` expected arrivals. Always a class boundary (or the whole
// cluster) — matching the vector path's group, whose C_j plateaus make any
// mid-class j unreachable.
std::int64_t bucketed_aggressive_count_at(
    const BucketedAggressiveSchedule& schedule, double jobs_elapsed);

// Stationary rule (continuous / update-on-access): smallest class boundary
// whose fill cost is >= K; the whole cluster when none is.
std::int64_t bucketed_aggressive_stationary_count(
    const BucketedAggressiveSchedule& schedule, double expected_arrivals);

// Level masses implied by a uniform pick over the `count` least-loaded
// servers (count in [1, total]).
std::vector<double> aggressive_level_masses(
    const BucketedAggressiveSchedule& schedule, std::int64_t count);

// Hybrid LI first subinterval over the histogram: mass per level
// proportional to member count times deficit below the peak level; uniform
// over levels' members when all loads are equal (empty first subinterval).
std::vector<double> hybrid_li_first_interval_level_masses(
    const sim::LevelHistogram& hist);

// Expected arrivals the first subinterval consumes: the exact integer
// deficit sum peak * total - level_sum.
double hybrid_li_first_interval_jobs(const sim::LevelHistogram& hist);

// Two-stage sampler: DiscreteSampler over a level-mass vector, then uniform
// within the sampled level via the LevelIndex (two rng draws per pick).
class LevelSampler {
 public:
  explicit LevelSampler(std::span<const double> level_masses)
      : level_sampler_(level_masses) {}

  int sample_level(sim::Rng& rng) const { return level_sampler_.sample(rng); }

  int sample(const sim::LevelIndex& index, sim::Rng& rng) const {
    return index.pick_uniform_in_level(sample_level(rng), rng);
  }

 private:
  DiscreteSampler level_sampler_;
};

// --- differential-equivalence audits (called under STALE_AUDIT) ------------
//
// Each recomputes the O(n) vector kernel from the raw loads and asserts the
// bucketed result matches per level (1e-9 relative tolerance on masses —
// generous against the renormalization-order drift, far below any real
// divergence). O(n log n) per call; audit builds only.

void audit_basic_li_equivalence(std::span<const double> level_masses,
                                std::span<const int> loads,
                                double expected_arrivals, const char* where);

void audit_aggressive_equivalence(const BucketedAggressiveSchedule& schedule,
                                  std::int64_t count,
                                  std::span<const int> loads,
                                  double jobs_elapsed, bool periodic,
                                  const char* where);

void audit_hybrid_equivalence(std::span<const double> level_masses,
                              double first_interval_jobs,
                              std::span<const int> loads, const char* where);

}  // namespace stale::core
