// Sampling from discrete probability vectors produced by the LI algorithms.
//
// DiscreteSampler: O(log n) inverse-CDF sampling; cheap to build, the default
// for the paper's n = 10. AliasSampler: Walker/Vose alias method, O(n) build
// and O(1) sampling, preferable when one distribution serves many draws over
// large n (e.g. a whole periodic-update phase at n = 100+).
#pragma once

#include <span>
#include <vector>

#include "sim/rng.h"

namespace stale::core {

class DiscreteSampler {
 public:
  // `probabilities` must be non-negative with a positive sum (it is
  // normalized internally).
  explicit DiscreteSampler(std::span<const double> probabilities);

  int sample(sim::Rng& rng) const;

  int size() const { return static_cast<int>(cdf_.size()); }

 private:
  std::vector<double> cdf_;  // normalized inclusive prefix sums
};

class AliasSampler {
 public:
  explicit AliasSampler(std::span<const double> probabilities);

  int sample(sim::Rng& rng) const;

  int size() const { return static_cast<int>(prob_.size()); }

 private:
  std::vector<double> prob_;  // acceptance threshold per bucket
  std::vector<int> alias_;    // fallback index per bucket
};

}  // namespace stale::core
