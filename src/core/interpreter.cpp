#include "core/interpreter.h"

#include <stdexcept>

namespace stale::core {

RateSource RateSource::told(double lambda_total) {
  RateSource source;
  source.fixed = lambda_total;
  return source;
}

RateSource RateSource::conservative_max(double max_throughput) {
  RateSource source;
  source.estimator =
      std::make_unique<ConservativeRateEstimator>(max_throughput);
  return source;
}

RateSource RateSource::ewma(double time_constant, double initial_rate) {
  RateSource source;
  source.estimator =
      std::make_unique<EwmaRateEstimator>(time_constant, initial_rate);
  return source;
}

RateSource RateSource::windowed(double window, double initial_rate) {
  RateSource source;
  source.estimator =
      std::make_unique<WindowedRateEstimator>(window, initial_rate);
  return source;
}

LoadInterpreter::LoadInterpreter(Options options)
    : options_(std::move(options)) {
  if (options_.num_servers <= 0) {
    throw std::invalid_argument("LoadInterpreter: num_servers must be > 0");
  }
  if (!options_.rate.fixed.has_value() && !options_.rate.estimator) {
    throw std::invalid_argument("LoadInterpreter: no rate source configured");
  }
  if (!options_.server_rates.empty()) {
    if (options_.server_rates.size() !=
        static_cast<std::size_t>(options_.num_servers)) {
      throw std::invalid_argument(
          "LoadInterpreter: server_rates size mismatch");
    }
    if (options_.mode != LiMode::kBasic) {
      throw std::invalid_argument(
          "LoadInterpreter: heterogeneous rates supported in Basic mode only");
    }
  }
  // Until the first report, interpret "no information" as all-equal loads,
  // which yields the uniform distribution in every mode.
  loads_.assign(static_cast<std::size_t>(options_.num_servers), 0.0);
}

void LoadInterpreter::report_loads(std::span<const int> loads, double age) {
  std::vector<double> as_double(loads.begin(), loads.end());
  report_loads(std::span<const double>(as_double), age);
}

void LoadInterpreter::report_loads(std::span<const double> loads, double age) {
  if (loads.size() != static_cast<std::size_t>(options_.num_servers)) {
    throw std::invalid_argument("LoadInterpreter: load vector size mismatch");
  }
  if (age < 0.0) {
    throw std::invalid_argument("LoadInterpreter: negative report age");
  }
  loads_.assign(loads.begin(), loads.end());
  age_ = age;
  // Anchor the report in absolute time if we have a clock from on_arrival.
  report_time_ = last_arrival_time_ >= 0.0 ? last_arrival_time_ - age : -1.0;
  invalidate();
}

void LoadInterpreter::on_arrival(double t) {
  if (options_.rate.estimator) options_.rate.estimator->on_arrival(t);
  if (report_time_ >= 0.0 && t >= report_time_) {
    age_ = t - report_time_;
  } else if (last_arrival_time_ >= 0.0 && t > last_arrival_time_) {
    age_ += t - last_arrival_time_;  // no anchor: age the report relatively
  }
  last_arrival_time_ = t;
  invalidate();
}

double LoadInterpreter::current_rate_estimate() const {
  if (options_.rate.fixed.has_value()) return *options_.rate.fixed;
  return options_.rate.estimator->rate();
}

void LoadInterpreter::recompute() {
  const double expected_arrivals = current_rate_estimate() * age_;
  switch (options_.mode) {
    case LiMode::kBasic:
      if (!options_.server_rates.empty()) {
        probabilities_ = basic_li_probabilities_weighted(
            loads_, options_.server_rates, expected_arrivals);
      } else {
        probabilities_ = basic_li_probabilities(
            std::span<const double>(loads_), expected_arrivals);
      }
      break;
    case LiMode::kAggressive:
      probabilities_ =
          aggressive_li_stationary_probabilities(loads_, expected_arrivals);
      break;
    case LiMode::kHybrid: {
      // Deficit-proportional while the expected arrivals since the report
      // are not enough to level everyone; uniform afterwards.
      const double first_jobs = hybrid_li_first_interval_jobs(loads_);
      if (expected_arrivals < first_jobs) {
        probabilities_ = hybrid_li_first_interval_probabilities(loads_);
      } else {
        probabilities_.assign(loads_.size(), 1.0 / static_cast<double>(
                                                       loads_.size()));
      }
      break;
    }
  }
  sampler_.emplace(std::span<const double>(probabilities_));
  dirty_ = false;
}

const std::vector<double>& LoadInterpreter::probabilities() {
  if (dirty_) recompute();
  return probabilities_;
}

int LoadInterpreter::pick(sim::Rng& rng) {
  if (dirty_) recompute();
  return sampler_->sample(rng);
}

}  // namespace stale::core
