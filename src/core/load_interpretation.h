// The Load Interpretation (LI) math from the paper, as pure functions.
//
// Inputs are a reported load vector b (queue lengths, possibly stale) and the
// expected number of arrivals K that will hit the reported servers during the
// interval the interpretation covers (K = lambda_total * T for the periodic
// update model, K = lambda_total * age for the continuous / update-on-access
// models). The output is a probability vector p over the reported servers.
//
// Basic LI (paper Eqs. 2-4):
//   Choose p so that, in expectation, queue lengths are equal by the end of
//   the interval. With servers sorted ascending by load and m the largest
//   prefix that K arrivals can "fill" up to a common level
//   (Eq. 3: sum_{i<=m} (b_m - b_i) <= K), the common level is
//   L = (sum_{i<=m} b_i + K) / m and
//   p_i = (L - b_i) / K for i <= m, 0 otherwise (Eq. 4).
//   When K cannot even lift the least-loaded pair to a common level, all
//   probability concentrates on the least-loaded servers; when K -> infinity
//   p tends to uniform. Both limits are handled explicitly.
//
// Aggressive LI (paper Eq. 5) lives in aggressive_schedule.h.
#pragma once

#include <span>
#include <vector>

namespace stale::core {

// Basic LI probabilities (Eqs. 2-4). `loads` are the reported queue lengths
// (need not be sorted; any non-negative reals). `expected_arrivals` is K >= 0.
// Returns a probability vector aligned with `loads` (sums to 1).
//
// Limit behaviour: K == 0 returns the uniform distribution over the set of
// minimum-load servers (the K -> 0 limit of Eq. 4).
std::vector<double> basic_li_probabilities(std::span<const double> loads,
                                           double expected_arrivals);

// Convenience overload for integer queue lengths.
std::vector<double> basic_li_probabilities(std::span<const int> loads,
                                           double expected_arrivals);

// Weighted generalization for heterogeneous servers (paper future work):
// server i has service rate c_i; the target is equal *expected backlog per
// unit rate* (b_i + a_i) / c_i across the filled set, with sum a_i = K and
// a_i >= 0. Reduces to basic_li_probabilities when all rates are equal.
std::vector<double> basic_li_probabilities_weighted(
    std::span<const double> loads, std::span<const double> rates,
    double expected_arrivals);

// Hybrid LI (paper Section 4.1.1): phase splits into two subintervals; during
// the first, arrivals are distributed proportionally to each server's deficit
// below the maximum reported load; during the second they are uniform. This
// returns the *first subinterval* distribution (deficit-proportional). The
// caller (policy layer) decides which subinterval applies. If all loads are
// equal the result is uniform.
std::vector<double> hybrid_li_first_interval_probabilities(
    std::span<const double> loads);

// Number of expected arrivals consumed by Hybrid LI's first subinterval:
// sum_i (max(b) - b_i).
double hybrid_li_first_interval_jobs(std::span<const double> loads);

}  // namespace stale::core
