#include "core/ksubset_analysis.h"

#include <stdexcept>

namespace stale::core {

std::vector<double> ksubset_rank_probabilities(int n, int k) {
  if (n < 1 || k < 1 || k > n) {
    throw std::invalid_argument("ksubset_rank_probabilities: need 1<=k<=n");
  }
  std::vector<double> p(static_cast<std::size_t>(n), 0.0);
  // P(1) = C(n-1, k-1) / C(n, k) = k / n, and successive ranks satisfy
  //   P(i+1) / P(i) = C(n-i-1, k-1) / C(n-i, k-1) = (n-i-k+1) / (n-i),
  // letting us fill the vector with a running product (no factorials, no
  // overflow).
  double prob = static_cast<double>(k) / static_cast<double>(n);
  for (int i = 1; i <= n - k + 1; ++i) {
    p[static_cast<std::size_t>(i - 1)] = prob;
    prob *= static_cast<double>(n - i - k + 1) / static_cast<double>(n - i);
  }
  return p;
}

double ksubset_rank_probability(int n, int k, int rank) {
  if (rank < 1 || rank > n) {
    throw std::invalid_argument("ksubset_rank_probability: bad rank");
  }
  return ksubset_rank_probabilities(n, k)[static_cast<std::size_t>(rank - 1)];
}

}  // namespace stale::core
