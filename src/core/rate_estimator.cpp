#include "core/rate_estimator.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace stale::core {

ConservativeRateEstimator::ConservativeRateEstimator(double max_throughput)
    : max_throughput_(max_throughput) {
  if (max_throughput <= 0.0) {
    throw std::invalid_argument("ConservativeRateEstimator: need rate > 0");
  }
}

std::string ConservativeRateEstimator::describe() const {
  std::ostringstream os;
  os << "conservative(" << max_throughput_ << ")";
  return os.str();
}

EwmaRateEstimator::EwmaRateEstimator(double time_constant, double initial_rate)
    : tau_(time_constant), rate_(initial_rate) {
  if (time_constant <= 0.0 || initial_rate <= 0.0) {
    throw std::invalid_argument("EwmaRateEstimator: need tau, rate > 0");
  }
}

void EwmaRateEstimator::on_arrival(double t) {
  if (last_arrival_ < 0.0) {
    last_arrival_ = t;
    return;
  }
  const double gap = t - last_arrival_;
  last_arrival_ = t;
  if (gap <= 0.0) return;  // simultaneous arrivals contribute no new info
  const double weight = 1.0 - std::exp(-gap / tau_);
  rate_ += weight * (1.0 / gap - rate_);
}

std::string EwmaRateEstimator::describe() const {
  std::ostringstream os;
  os << "ewma(tau=" << tau_ << ")";
  return os.str();
}

WindowedRateEstimator::WindowedRateEstimator(double window,
                                             double initial_rate)
    : window_(window), initial_rate_(initial_rate) {
  if (window <= 0.0 || initial_rate <= 0.0) {
    throw std::invalid_argument("WindowedRateEstimator: need window, rate > 0");
  }
}

void WindowedRateEstimator::on_arrival(double t) {
  now_ = t;
  arrivals_.push_back(t);
  while (!arrivals_.empty() && arrivals_.front() < t - window_) {
    arrivals_.pop_front();
  }
}

double WindowedRateEstimator::rate() const {
  if (now_ < window_) return initial_rate_;  // window not yet filled
  return static_cast<double>(arrivals_.size()) / window_;
}

std::string WindowedRateEstimator::describe() const {
  std::ostringstream os;
  os << "windowed(w=" << window_ << ")";
  return os.str();
}

}  // namespace stale::core
