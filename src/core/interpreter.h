// LoadInterpreter: the library's stateful public facade.
//
// A dispatcher embedding this library feeds it (a) the most recent load
// report, (b) that report's age, and (c) an arrival-rate estimate, and asks
// for either the interpreted probability vector or a sampled server. This is
// the API a real load balancer (DNS rotator, L4 switch, cluster scheduler)
// would call per request; the simulation policies in policy/ are thin
// wrappers over the same math.
//
// Example:
//   LoadInterpreter li(LoadInterpreter::Options{
//       .mode = LiMode::kBasic,
//       .num_servers = 8,
//       .rate = RateSource::conservative_max(8.0)});
//   li.report_loads(loads, /*age=*/0.25);
//   int target = li.pick(rng);
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/aggressive_schedule.h"
#include "core/load_interpretation.h"
#include "core/rate_estimator.h"
#include "core/sampler.h"
#include "sim/rng.h"

namespace stale::core {

enum class LiMode {
  kBasic,       // equalize by end of window (Eqs. 2-4)
  kAggressive,  // stationary water-filling group (Eq. 5 rule)
  kHybrid,      // deficit-proportional then uniform (Section 4.1.1)
};

// Where the interpreter gets its arrival-rate estimate.
struct RateSource {
  // Exactly one of these is set.
  std::optional<double> fixed;          // told a constant rate
  RateEstimatorPtr estimator;           // learned online

  static RateSource told(double lambda_total);
  static RateSource conservative_max(double max_throughput);
  static RateSource ewma(double time_constant, double initial_rate);
  static RateSource windowed(double window, double initial_rate);
};

class LoadInterpreter {
 public:
  struct Options {
    LiMode mode = LiMode::kBasic;
    int num_servers = 0;               // required
    RateSource rate;                   // required
    // Optional per-server service rates for heterogeneous clusters
    // (basic mode only); empty = homogeneous.
    std::vector<double> server_rates;
  };

  explicit LoadInterpreter(Options options);

  // Feeds a load report: `loads[i]` is server i's queue length as of `age`
  // time units ago (age >= 0). May be called as often as reports arrive.
  void report_loads(std::span<const int> loads, double age);
  void report_loads(std::span<const double> loads, double age);

  // Notifies the interpreter that a request arrived at absolute time `t`
  // (drives online rate estimators and, between reports, ages the last
  // report). Optional when the rate is fixed and ages are supplied directly.
  void on_arrival(double t);

  // The interpreted probability vector for the current report. Recomputed
  // lazily and cached until the next report_loads / on_arrival.
  const std::vector<double>& probabilities();

  // Samples a server from probabilities().
  int pick(sim::Rng& rng);

  double current_rate_estimate() const;
  double report_age() const { return age_; }

 private:
  void invalidate() { dirty_ = true; }
  void recompute();

  Options options_;
  std::vector<double> loads_;
  double age_ = 0.0;
  double report_time_ = -1.0;  // absolute time of last report, if known
  double last_arrival_time_ = -1.0;
  std::vector<double> probabilities_;
  std::optional<DiscreteSampler> sampler_;
  bool dirty_ = true;
};

}  // namespace stale::core
