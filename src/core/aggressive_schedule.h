// Aggressive LI (paper Eq. 5, Section 4.1.1) — equivalent to Mitzenmacher's
// Time-Based algorithm.
//
// Instead of equalizing queue lengths only by the *end* of the phase (Basic
// LI), Aggressive LI water-fills as early as possible: sort servers by
// reported load b_1 <= ... <= b_n; during subinterval j all arrivals are
// spread uniformly over the j least-loaded servers, and subinterval j lasts
// exactly long enough for its arrivals to lift those j servers to b_{j+1}.
// The final subinterval (j = n) is uniform over everyone and lasts for the
// remainder of the phase (the paper's "sentinel" b_{n+1}).
//
// The schedule is naturally expressed in *expected arrivals consumed so far*:
//   C_j = sum_{i<=j} (b_{j+1} - b_i)   for j = 1..n-1   (non-decreasing)
// and the group in effect after x expected arrivals is the smallest j with
// x < C_j (or n when x >= C_{n-1}).
//
// Under the continuous / update-on-access models the paper prescribes the
// *stationary* rule: with information of age T and K = lambda_total * T
// expected arrivals since the snapshot, use the last subinterval the schedule
// would have reached, i.e. the smallest j with C_j >= K (n if none).
#pragma once

#include <span>
#include <vector>

namespace stale::core {

struct AggressiveSchedule {
  // Server indices sorted by reported load ascending (ties by index).
  std::vector<int> order;
  // cum_jobs[j-1] = C_j for j = 1..n-1 (empty when n == 1).
  std::vector<double> cum_jobs;

  int size() const { return static_cast<int>(order.size()); }
};

// Builds the schedule from a reported load vector.
AggressiveSchedule make_aggressive_schedule(std::span<const double> loads);
AggressiveSchedule make_aggressive_schedule(std::span<const int> loads);

// Group (1-based j) in effect after `jobs_elapsed` expected arrivals of the
// phase have passed: the periodic-update rule. jobs_elapsed >= 0.
int aggressive_group_at(const AggressiveSchedule& schedule,
                        double jobs_elapsed);

// Stationary group for information of "age" `expected_arrivals` = K: the
// smallest j with C_j >= K (continuous / update-on-access rule).
int aggressive_stationary_group(const AggressiveSchedule& schedule,
                                double expected_arrivals);

// Probability vector for a group: uniform over the `group` least-loaded
// servers, zero elsewhere. Aligned with the original load vector.
std::vector<double> aggressive_group_probabilities(
    const AggressiveSchedule& schedule, int group);

// One-call convenience for the periodic model: probabilities for a request
// arriving `elapsed` time units into a phase of length `phase_length`, given
// the board snapshot `loads` and the aggregate arrival-rate estimate.
std::vector<double> aggressive_li_probabilities(
    std::span<const double> loads, double lambda_total, double elapsed);

// One-call convenience for the continuous / update-on-access models.
std::vector<double> aggressive_li_stationary_probabilities(
    std::span<const double> loads, double expected_arrivals);

}  // namespace stale::core
