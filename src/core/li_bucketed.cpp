#include "core/li_bucketed.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/contracts.h"
#include "core/aggressive_schedule.h"
#include "core/load_interpretation.h"

namespace stale::core {

namespace {

// Matches kTinyArrivals in core/load_interpretation.cpp: below this K the
// closed form degenerates numerically and both paths take the K -> 0 limit.
constexpr double kTinyArrivals = 1e-12;

// Audit tolerance on per-level masses (<= 1): generous against the final
// renormalization's accumulation-order drift, far below real divergence.
constexpr double kMassTolerance = 1e-9;

void validate_hist(const sim::LevelHistogram& hist, const char* what) {
  if (hist.empty()) {
    throw std::invalid_argument(std::string(what) + ": empty histogram");
  }
}

// Per-level sums of a per-server probability vector, dense over levels.
std::vector<double> level_sums(std::span<const double> p,
                               std::span<const int> loads) {
  int top = 0;
  for (int level : loads) top = std::max(top, level);
  std::vector<double> sums(static_cast<std::size_t>(top) + 1, 0.0);
  for (std::size_t i = 0; i < loads.size(); ++i) {
    sums[static_cast<std::size_t>(loads[i])] += p[i];
  }
  return sums;
}

void assert_masses_match(std::span<const double> bucketed,
                         std::span<const double> vector_path,
                         const char* where) {
  const std::size_t levels = std::max(bucketed.size(), vector_path.size());
  for (std::size_t level = 0; level < levels; ++level) {
    const double a = level < bucketed.size() ? bucketed[level] : 0.0;
    const double b = level < vector_path.size() ? vector_path[level] : 0.0;
    STALE_ASSERT(std::fabs(a - b) <= kMassTolerance, where);
  }
}

}  // namespace

std::vector<double> basic_li_level_masses(const sim::LevelHistogram& hist,
                                          double expected_arrivals) {
  validate_hist(hist, "basic_li_level_masses");
  if (expected_arrivals < 0.0 || !std::isfinite(expected_arrivals)) {
    throw std::invalid_argument(
        "basic_li_level_masses: expected_arrivals must be finite, >= 0");
  }
  std::vector<double> masses(static_cast<std::size_t>(hist.max_level()) + 1,
                             0.0);
  const double arrivals = expected_arrivals;
  if (arrivals <= kTinyArrivals) {
    // K -> 0 limit: all mass on the minimum-load class.
    masses[static_cast<std::size_t>(hist.min_level())] = 1.0;
    return masses;
  }

  // Eq. 3 prefix scan over classes. The jobs needed to lift the first
  // `members` servers to level l is l * members - level_total — exact int64,
  // so the fill set (and the common level below) match the vector kernel's
  // double arithmetic bit for bit.
  std::int64_t members = 0;
  std::int64_t level_total = 0;
  int fill_level = hist.min_level();
  for (int level = hist.min_level(); level <= hist.max_level(); ++level) {
    const std::int64_t size = hist.count(level);
    if (size == 0) continue;
    if (members > 0) {
      const double need =
          static_cast<double>(level * members - level_total);
      if (need > arrivals) break;
    }
    members += size;
    level_total += static_cast<std::int64_t>(level) * size;
    fill_level = level;
  }

  // Eq. 4: common level and per-level masses, renormalized as the vector
  // kernel does (clamping tiny negative shares from FP cancellation).
  const double common =
      (static_cast<double>(level_total) + arrivals) /
      static_cast<double>(members);
  double total = 0.0;
  for (int level = hist.min_level(); level <= fill_level; ++level) {
    const std::int64_t size = hist.count(level);
    if (size == 0) continue;
    double share = (common - static_cast<double>(level)) / arrivals;
    if (share < 0.0) share = 0.0;
    const double mass = static_cast<double>(size) * share;
    masses[static_cast<std::size_t>(level)] = mass;
    total += mass;
  }
  for (double& mass : masses) mass /= total;
  return masses;
}

BucketedAggressiveSchedule make_bucketed_aggressive_schedule(
    const sim::LevelHistogram& hist) {
  validate_hist(hist, "make_bucketed_aggressive_schedule");
  BucketedAggressiveSchedule schedule;
  schedule.total = hist.total();
  std::int64_t members = 0;
  std::int64_t level_total = 0;
  for (int level = hist.min_level(); level <= hist.max_level(); ++level) {
    const std::int64_t size = hist.count(level);
    if (size == 0) continue;
    if (!schedule.levels.empty()) {
      // Fill cost to lift every earlier class to this level: exact int64,
      // equal to the vector schedule's C_j at the class boundary.
      schedule.fill_costs.push_back(
          static_cast<double>(members * level - level_total));
    }
    schedule.levels.push_back(level);
    members += size;
    level_total += static_cast<std::int64_t>(level) * size;
    schedule.cum_counts.push_back(members);
  }
  return schedule;
}

std::int64_t bucketed_aggressive_count_at(
    const BucketedAggressiveSchedule& schedule, double jobs_elapsed) {
  if (jobs_elapsed < 0.0) {
    throw std::invalid_argument(
        "bucketed_aggressive_count_at: negative jobs_elapsed");
  }
  const auto it = std::upper_bound(schedule.fill_costs.begin(),
                                   schedule.fill_costs.end(), jobs_elapsed);
  return schedule.cum_counts[static_cast<std::size_t>(
      it - schedule.fill_costs.begin())];
}

std::int64_t bucketed_aggressive_stationary_count(
    const BucketedAggressiveSchedule& schedule, double expected_arrivals) {
  if (expected_arrivals < 0.0) {
    throw std::invalid_argument(
        "bucketed_aggressive_stationary_count: negative expected_arrivals");
  }
  // Smallest class boundary whose fill cost reaches K. At K == 0 this is the
  // whole minimum class where the vector path's index tie-break names a
  // single member — identical per-level mass (see header).
  const auto it =
      std::lower_bound(schedule.fill_costs.begin(), schedule.fill_costs.end(),
                       expected_arrivals);
  return schedule.cum_counts[static_cast<std::size_t>(
      it - schedule.fill_costs.begin())];
}

std::vector<double> aggressive_level_masses(
    const BucketedAggressiveSchedule& schedule, std::int64_t count) {
  if (count < 1 || count > schedule.total) {
    throw std::invalid_argument("aggressive_level_masses: bad count");
  }
  std::vector<double> masses(
      static_cast<std::size_t>(schedule.levels.back()) + 1, 0.0);
  std::int64_t remaining = count;
  std::int64_t previous = 0;
  for (std::size_t r = 0; r < schedule.levels.size() && remaining > 0; ++r) {
    const std::int64_t size = schedule.cum_counts[r] - previous;
    previous = schedule.cum_counts[r];
    const std::int64_t taken = std::min(size, remaining);
    remaining -= taken;
    masses[static_cast<std::size_t>(schedule.levels[r])] =
        static_cast<double>(taken) / static_cast<double>(count);
  }
  return masses;
}

std::vector<double> hybrid_li_first_interval_level_masses(
    const sim::LevelHistogram& hist) {
  validate_hist(hist, "hybrid_li_first_interval_level_masses");
  const int peak = hist.max_level();
  std::vector<double> masses(static_cast<std::size_t>(peak) + 1, 0.0);
  const std::int64_t deficit =
      static_cast<std::int64_t>(peak) * hist.total() - hist.level_sum();
  if (deficit == 0) {
    // All loads equal: empty first subinterval, uniform over everyone — all
    // of whom sit at the single occupied level.
    masses[static_cast<std::size_t>(peak)] = 1.0;
    return masses;
  }
  for (int level = hist.min_level(); level <= peak; ++level) {
    const std::int64_t size = hist.count(level);
    if (size == 0) continue;
    masses[static_cast<std::size_t>(level)] =
        static_cast<double>(size * (peak - level)) /
        static_cast<double>(deficit);
  }
  return masses;
}

double hybrid_li_first_interval_jobs(const sim::LevelHistogram& hist) {
  validate_hist(hist, "hybrid_li_first_interval_jobs");
  return static_cast<double>(
      static_cast<std::int64_t>(hist.max_level()) * hist.total() -
      hist.level_sum());
}

void audit_basic_li_equivalence(std::span<const double> level_masses,
                                std::span<const int> loads,
                                double expected_arrivals, const char* where) {
  const std::vector<double> p =
      basic_li_probabilities(loads, expected_arrivals);
  assert_masses_match(level_masses, level_sums(p, loads), where);
}

void audit_aggressive_equivalence(const BucketedAggressiveSchedule& schedule,
                                  std::int64_t count,
                                  std::span<const int> loads,
                                  double jobs_elapsed, bool periodic,
                                  const char* where) {
  const AggressiveSchedule vector_schedule = make_aggressive_schedule(loads);
  const int group =
      periodic ? aggressive_group_at(vector_schedule, jobs_elapsed)
               : aggressive_stationary_group(vector_schedule, jobs_elapsed);
  if (periodic) {
    // The periodic lookup always lands on a class boundary in both paths.
    STALE_ASSERT(static_cast<std::int64_t>(group) == count, where);
  }
  const std::vector<double> p =
      aggressive_group_probabilities(vector_schedule, group);
  assert_masses_match(aggressive_level_masses(schedule, count),
                      level_sums(p, loads), where);
}

void audit_hybrid_equivalence(std::span<const double> level_masses,
                              double first_interval_jobs,
                              std::span<const int> loads, const char* where) {
  std::vector<double> as_double(loads.begin(), loads.end());
  STALE_ASSERT(first_interval_jobs ==
                   core::hybrid_li_first_interval_jobs(as_double),
               where);
  const std::vector<double> p =
      hybrid_li_first_interval_probabilities(as_double);
  assert_masses_match(level_masses, level_sums(p, loads), where);
}

}  // namespace stale::core
