// Analytic properties of Mitzenmacher's k-subset algorithm (paper Section 2,
// Eq. 1 and Figure 1): with n servers ordered by reported load (rank 1 =
// least loaded) and a request dispatched to the least-loaded of a uniformly
// random k-subset, the probability the request lands on the rank-i server is
//
//   P(i) = C(n - i, k - 1) / C(n, k)   for i <= n - k + 1,   0 otherwise,
//
// assuming no ties. These closed forms seed Figure 1 and validate the
// simulated k-subset policy.
#pragma once

#include <vector>

namespace stale::core {

// Probability that a k-subset request is dispatched to the rank-i server
// (i is 1-based; element [0] of the result is rank 1). Requires 1<=k<=n.
std::vector<double> ksubset_rank_probabilities(int n, int k);

// Single-rank version of the above (rank is 1-based).
double ksubset_rank_probability(int n, int k, int rank);

}  // namespace stale::core
