#include "core/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "check/audit.h"

namespace stale::core {

namespace {

double validated_sum(std::span<const double> probabilities) {
  if (probabilities.empty()) {
    throw std::invalid_argument("sampler: empty probability vector");
  }
  double sum = 0.0;
  for (double v : probabilities) {
    if (v < 0.0 || !std::isfinite(v)) {
      throw std::invalid_argument("sampler: probabilities must be finite >=0");
    }
    sum += v;
  }
  if (sum <= 0.0) {
    throw std::invalid_argument("sampler: probabilities sum to zero");
  }
  return sum;
}

}  // namespace

DiscreteSampler::DiscreteSampler(std::span<const double> probabilities) {
  const double sum = validated_sum(probabilities);
  cdf_.resize(probabilities.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < probabilities.size(); ++i) {
    acc += probabilities[i] / sum;
    // Clamp: accumulation can overshoot 1.0 by a few ulp, and an interior
    // value above the (forced) final 1.0 would break the sorted-range
    // precondition of the upper_bound in sample().
    cdf_[i] = std::min(acc, 1.0);
  }
  cdf_.back() = 1.0;  // close the FP gap so sample() can never fall off
  STALE_AUDIT(check::audit_cdf(cdf_, "DiscreteSampler"));
}

int DiscreteSampler::sample(sim::Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int>(std::min<std::ptrdiff_t>(
      it - cdf_.begin(), static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

AliasSampler::AliasSampler(std::span<const double> probabilities) {
  const double sum = validated_sum(probabilities);
  const std::size_t n = probabilities.size();
  prob_.resize(n);
  alias_.resize(n);

  // Vose's stable alias construction.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = probabilities[i] / sum * static_cast<double>(n);
  }
  std::vector<int> small;
  std::vector<int> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<int>(i));
  }
  while (!small.empty() && !large.empty()) {
    const int s = small.back();
    small.pop_back();
    const int l = large.back();
    large.pop_back();
    prob_[static_cast<std::size_t>(s)] = scaled[static_cast<std::size_t>(s)];
    alias_[static_cast<std::size_t>(s)] = l;
    scaled[static_cast<std::size_t>(l)] =
        scaled[static_cast<std::size_t>(l)] +
        scaled[static_cast<std::size_t>(s)] - 1.0;
    (scaled[static_cast<std::size_t>(l)] < 1.0 ? small : large).push_back(l);
  }
  for (int i : large) {
    prob_[static_cast<std::size_t>(i)] = 1.0;
    alias_[static_cast<std::size_t>(i)] = i;
  }
  for (int i : small) {  // numerical leftovers
    prob_[static_cast<std::size_t>(i)] = 1.0;
    alias_[static_cast<std::size_t>(i)] = i;
  }
}

int AliasSampler::sample(sim::Rng& rng) const {
  const auto bucket =
      static_cast<std::size_t>(rng.next_below(prob_.size()));
  const double u = rng.next_double();
  return u < prob_[bucket] ? static_cast<int>(bucket) : alias_[bucket];
}

}  // namespace stale::core
