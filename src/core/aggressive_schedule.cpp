#include "core/aggressive_schedule.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace stale::core {

namespace {

void validate_loads(std::span<const double> loads) {
  if (loads.empty()) {
    throw std::invalid_argument("AggressiveLI: empty load vector");
  }
  for (double b : loads) {
    if (b < 0.0 || !std::isfinite(b)) {
      throw std::invalid_argument("AggressiveLI: loads must be finite, >= 0");
    }
  }
}

}  // namespace

AggressiveSchedule make_aggressive_schedule(std::span<const double> loads) {
  validate_loads(loads);
  const std::size_t n = loads.size();

  AggressiveSchedule schedule;
  schedule.order.resize(n);
  std::iota(schedule.order.begin(), schedule.order.end(), 0);
  std::sort(schedule.order.begin(), schedule.order.end(),
            [&](int a, int b) {
              if (loads[static_cast<std::size_t>(a)] !=
                  loads[static_cast<std::size_t>(b)]) {
                return loads[static_cast<std::size_t>(a)] <
                       loads[static_cast<std::size_t>(b)];
              }
              return a < b;  // deterministic tie-break
            });

  // C_j = j * b_{j+1} - sum_{i<=j} b_i, computed with a running prefix sum.
  schedule.cum_jobs.reserve(n > 0 ? n - 1 : 0);
  double prefix = 0.0;
  for (std::size_t j = 1; j < n; ++j) {
    prefix += loads[static_cast<std::size_t>(schedule.order[j - 1])];
    const double next_level =
        loads[static_cast<std::size_t>(schedule.order[j])];
    schedule.cum_jobs.push_back(static_cast<double>(j) * next_level - prefix);
  }
  return schedule;
}

AggressiveSchedule make_aggressive_schedule(std::span<const int> loads) {
  std::vector<double> as_double(loads.begin(), loads.end());
  return make_aggressive_schedule(as_double);
}

int aggressive_group_at(const AggressiveSchedule& schedule,
                        double jobs_elapsed) {
  if (jobs_elapsed < 0.0) {
    throw std::invalid_argument("AggressiveLI: negative jobs_elapsed");
  }
  // Group j is in effect while jobs_elapsed < C_j. Note ties in the load
  // vector give zero-length subintervals (C_j == C_{j-1}), which this search
  // skips naturally.
  const auto it = std::upper_bound(schedule.cum_jobs.begin(),
                                   schedule.cum_jobs.end(), jobs_elapsed);
  return static_cast<int>(it - schedule.cum_jobs.begin()) + 1;
}

int aggressive_stationary_group(const AggressiveSchedule& schedule,
                                double expected_arrivals) {
  if (expected_arrivals < 0.0) {
    throw std::invalid_argument("AggressiveLI: negative expected_arrivals");
  }
  // Smallest j with C_j >= K; n when even C_{n-1} < K.
  const auto it =
      std::lower_bound(schedule.cum_jobs.begin(), schedule.cum_jobs.end(),
                       expected_arrivals);
  return static_cast<int>(it - schedule.cum_jobs.begin()) + 1;
}

std::vector<double> aggressive_group_probabilities(
    const AggressiveSchedule& schedule, int group) {
  if (group < 1 || group > schedule.size()) {
    throw std::invalid_argument("AggressiveLI: group out of range");
  }
  std::vector<double> p(schedule.order.size(), 0.0);
  const double share = 1.0 / static_cast<double>(group);
  for (int j = 0; j < group; ++j) {
    p[static_cast<std::size_t>(schedule.order[static_cast<std::size_t>(j)])] =
        share;
  }
  return p;
}

std::vector<double> aggressive_li_probabilities(std::span<const double> loads,
                                                double lambda_total,
                                                double elapsed) {
  if (lambda_total < 0.0 || elapsed < 0.0) {
    throw std::invalid_argument("AggressiveLI: negative rate or elapsed time");
  }
  const AggressiveSchedule schedule = make_aggressive_schedule(loads);
  const int group = aggressive_group_at(schedule, lambda_total * elapsed);
  return aggressive_group_probabilities(schedule, group);
}

std::vector<double> aggressive_li_stationary_probabilities(
    std::span<const double> loads, double expected_arrivals) {
  const AggressiveSchedule schedule = make_aggressive_schedule(loads);
  const int group =
      aggressive_stationary_group(schedule, expected_arrivals);
  return aggressive_group_probabilities(schedule, group);
}

}  // namespace stale::core
