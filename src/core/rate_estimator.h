// Arrival-rate estimation for LI.
//
// The paper assumes clients are *told* lambda, and Section 5.6 shows that
// underestimates are dangerous while overestimates are nearly free; its
// recommended practical rule is "use the system's maximum achievable
// throughput as the estimate". These estimators close the loop for systems
// that must learn the rate online; the conservative estimator implements the
// paper's rule.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

namespace stale::core {

class RateEstimator {
 public:
  virtual ~RateEstimator() = default;

  // Informs the estimator that one arrival happened at absolute time `t`
  // (non-decreasing across calls).
  virtual void on_arrival(double t) = 0;

  // Current estimate of the aggregate arrival rate (jobs per time unit).
  virtual double rate() const = 0;

  virtual std::string describe() const = 0;
};

using RateEstimatorPtr = std::unique_ptr<RateEstimator>;

// Always reports `max_throughput` (the paper's conservative rule: if the
// actual load is lower, LI merely becomes more uniform — which is fine at
// low load; if it is higher, the system is unstable no matter what).
class ConservativeRateEstimator final : public RateEstimator {
 public:
  explicit ConservativeRateEstimator(double max_throughput);

  void on_arrival(double) override {}
  double rate() const override { return max_throughput_; }
  std::string describe() const override;

 private:
  double max_throughput_;
};

// Exponentially weighted moving average of instantaneous rates, with the
// given averaging time constant (larger = smoother). The estimate after an
// inter-arrival gap g blends toward 1/g with weight 1 - exp(-g / tau).
class EwmaRateEstimator final : public RateEstimator {
 public:
  EwmaRateEstimator(double time_constant, double initial_rate);

  void on_arrival(double t) override;
  double rate() const override { return rate_; }
  std::string describe() const override;

 private:
  double tau_;
  double rate_;
  double last_arrival_ = -1.0;
};

// Counts arrivals in a sliding window of fixed duration; the estimate is
// count / window. Exact but O(window occupancy) memory.
class WindowedRateEstimator final : public RateEstimator {
 public:
  WindowedRateEstimator(double window, double initial_rate);

  void on_arrival(double t) override;
  double rate() const override;
  std::string describe() const override;

 private:
  double window_;
  double initial_rate_;
  std::deque<double> arrivals_;
  double now_ = 0.0;
};

}  // namespace stale::core
