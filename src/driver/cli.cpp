#include "driver/cli.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "policy/policy_factory.h"
#include "runtime/thread_pool.h"

namespace stale::driver {

namespace {

const std::vector<std::string> kStandardSwitches = {"paper", "fast", "csv"};
const std::vector<std::string> kStandardFlags = {
    "num-jobs",      "warmup",     "trials",       "seed",
    "jobs",          "fault-spec", "crash-rate",   "update-loss",
    "max-staleness", "board-repr", "churn-spec",   "dispatchers",
    "dispatcher-split",            "token-budget"};

bool contains(const std::vector<std::string>& list, const std::string& item) {
  return std::find(list.begin(), list.end(), item) != list.end();
}

}  // namespace

Cli::Cli(int argc, const char* const* argv,
         const std::vector<std::string>& extra_flags,
         const std::vector<std::string>& extra_switches) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("Cli: unexpected positional arg '" + arg +
                                  "'");
    }
    arg = arg.substr(2);
    std::string value = "1";
    const auto eq = arg.find('=');
    bool has_inline_value = eq != std::string::npos;
    if (has_inline_value) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    }
    const bool is_switch =
        contains(kStandardSwitches, arg) || contains(extra_switches, arg);
    const bool is_flag =
        contains(kStandardFlags, arg) || contains(extra_flags, arg);
    if (!is_switch && !is_flag) {
      throw std::invalid_argument("Cli: unknown flag '--" + arg + "'");
    }
    if (is_switch && has_inline_value) {
      throw std::invalid_argument("Cli: switch '--" + arg +
                                  "' does not take a value");
    }
    if (is_flag && !has_inline_value) {
      if (i + 1 >= argc) {
        throw std::invalid_argument("Cli: flag '--" + arg +
                                    "' expects a value");
      }
      value = argv[++i];
    }
    values_[arg] = value;
  }
  if (has("paper") && has("fast")) {
    throw std::invalid_argument("Cli: --paper and --fast are exclusive");
  }
}

bool Cli::has(const std::string& flag) const {
  return values_.count(flag) > 0;
}

std::string Cli::get(const std::string& flag,
                     const std::string& fallback) const {
  const auto it = values_.find(flag);
  return it == values_.end() ? fallback : it->second;
}

double Cli::get_double(const std::string& flag, double fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(it->second, &pos);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("Cli: value for --" + flag +
                                " is out of range: '" + it->second + "'");
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: bad numeric value for --" + flag +
                                ": '" + it->second + "'");
  }
  if (pos != it->second.size()) {
    throw std::invalid_argument("Cli: bad numeric value for --" + flag +
                                ": '" + it->second + "'");
  }
  return value;
}

std::int64_t Cli::get_int(const std::string& flag,
                          std::int64_t fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  std::int64_t value = 0;
  try {
    value = std::stoll(it->second, &pos);
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("Cli: value for --" + flag +
                                " is out of range: '" + it->second + "'");
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: bad integer value for --" + flag +
                                ": '" + it->second + "'");
  }
  if (pos != it->second.size()) {
    throw std::invalid_argument("Cli: bad integer value for --" + flag +
                                ": '" + it->second + "'");
  }
  return value;
}

int Cli::jobs() const {
  if (has("jobs")) {
    const int jobs = static_cast<int>(get_int("jobs", 0));
    if (jobs < 1) {
      throw std::invalid_argument("Cli: --jobs must be >= 1");
    }
    return jobs;
  }
  return runtime::ThreadPool::default_jobs();
}

void Cli::apply_run_scale(ExperimentConfig& config) const {
  if (has("paper")) {
    config.num_jobs = 500'000;
    config.warmup_jobs = 100'000;
    config.trials = 10;
  } else if (has("fast")) {
    config.num_jobs = 20'000;
    config.warmup_jobs = 5'000;
    config.trials = 2;
  } else {
    config.num_jobs = 120'000;
    config.warmup_jobs = 30'000;
    config.trials = 5;
  }
  const std::int64_t num_jobs =
      get_int("num-jobs", static_cast<std::int64_t>(config.num_jobs));
  if (num_jobs < 1) {
    throw std::invalid_argument("Cli: --num-jobs must be >= 1");
  }
  config.num_jobs = static_cast<std::uint64_t>(num_jobs);
  const std::int64_t warmup =
      get_int("warmup", static_cast<std::int64_t>(config.warmup_jobs));
  if (warmup < 0 || static_cast<std::uint64_t>(warmup) >= config.num_jobs) {
    throw std::invalid_argument(
        "Cli: --warmup must be >= 0 and < --num-jobs");
  }
  config.warmup_jobs = static_cast<std::uint64_t>(warmup);
  const std::int64_t trials = get_int("trials", config.trials);
  if (trials < 1) {
    throw std::invalid_argument("Cli: --trials must be >= 1");
  }
  config.trials = static_cast<int>(trials);
  const std::int64_t seed =
      get_int("seed", static_cast<std::int64_t>(config.base_seed));
  if (seed < 0) {
    throw std::invalid_argument("Cli: --seed must be >= 0");
  }
  config.base_seed = static_cast<std::uint64_t>(seed);
  config.jobs = jobs();
  if (has("board-repr")) {
    config.board_repr = policy::parse_board_repr(get("board-repr", "auto"));
  }
  const std::int64_t dispatchers =
      get_int("dispatchers", config.dispatchers);
  if (dispatchers < 1) {
    throw std::invalid_argument("Cli: --dispatchers must be >= 1");
  }
  config.dispatchers = static_cast<int>(dispatchers);
  if (has("dispatcher-split")) {
    config.dispatcher_split =
        dispatch::parse_dispatcher_split(get("dispatcher-split", "uniform"));
  }
  const std::int64_t token_budget =
      get_int("token-budget", config.jiq_token_budget);
  if (token_budget < 0) {
    throw std::invalid_argument("Cli: --token-budget must be >= 0");
  }
  config.jiq_token_budget = static_cast<int>(token_budget);
  apply_faults(config);
  if (has("churn-spec")) {
    config.churn = health::ChurnSpec::parse(get("churn-spec", ""));
  }
  // Surface the flag-level conflicts here, where the message can name the
  // offending flags rather than config fields.
  if (config.board_repr == policy::BoardRepr::kBucketed &&
      config.fault.any()) {
    throw std::invalid_argument(
        "Cli: --board-repr bucketed cannot be combined with --fault-spec "
        "(or --crash-rate/--update-loss/--max-staleness): fault injection "
        "reshapes probabilities per server, which the bucketed "
        "representation cannot express — drop one of the two flags, or use "
        "--churn-spec, whose health layer keeps the bucketed path eligible");
  }
  if (config.churn.any() && config.fault.any()) {
    throw std::invalid_argument(
        "Cli: --churn-spec and --fault-spec are mutually exclusive (the "
        "fault path hands the dispatcher ground-truth liveness; the churn "
        "path makes it earn one through the health subsystem)");
  }
  if (config.dispatchers > 1 && config.fault.any()) {
    throw std::invalid_argument(
        "Cli: --dispatchers > 1 cannot be combined with --fault-spec (or "
        "--crash-rate/--update-loss/--max-staleness): use --churn-spec, "
        "whose health subsystem gives each dispatcher its own earned "
        "liveness view");
  }
}

void Cli::apply_faults(ExperimentConfig& config) const {
  if (has("fault-spec")) {
    config.fault = fault::FaultSpec::parse(get("fault-spec", ""));
  }
  if (has("crash-rate")) {
    config.fault.crash_rate = get_double("crash-rate", 0.0);
  }
  if (has("update-loss")) {
    config.fault.update_loss = get_double("update-loss", 0.0);
  }
  if (has("max-staleness")) {
    // Accepts the same forms as the spec's cutoff key: absolute time ("5.0")
    // or a multiple of the update interval ("2T").
    const fault::FaultSpec parsed =
        fault::FaultSpec::parse("cutoff=" + get("max-staleness", ""));
    config.fault.cutoff_value = parsed.cutoff_value;
    config.fault.cutoff_in_intervals = parsed.cutoff_in_intervals;
  }
  config.fault.validate();
}

std::string Cli::scale_description() const {
  ExperimentConfig probe;
  apply_run_scale(probe);
  std::ostringstream os;
  os << (has("paper") ? "paper" : has("fast") ? "fast" : "default")
     << " scale: " << probe.num_jobs << " jobs (" << probe.warmup_jobs
     << " warmup), " << probe.trials << " trials, seed " << probe.base_seed
     << ", " << probe.jobs << " worker thread(s)";
  return os.str();
}

}  // namespace stale::driver
