// Minimal CLI flag parsing shared by all bench binaries.
//
// Every figure bench accepts:
//   --paper           paper-fidelity run lengths (500k jobs, 100k warmup,
//                     10 trials)
//   --fast            smoke-test lengths (20k jobs, 5k warmup, 2 trials)
//   (default)         reduced lengths that keep every qualitative shape
//                     (120k jobs, 30k warmup, 5 trials)
//   --num-jobs N --warmup N --trials N --seed S   manual overrides
//   --jobs N          worker threads (make-style); defaults to the
//                     STALE_JOBS env var, else hardware_concurrency.
//                     --jobs 1 restores the old single-threaded path.
//   --csv             machine-readable output
//   --fault-spec S    full fault spec (see fault/fault_spec.h), e.g.
//                     "crash=0.01,down=5,loss=0.2,cutoff=2T"
//   --crash-rate R / --update-loss P / --max-staleness X
//                     shorthand overrides for the spec's crash, loss, and
//                     cutoff fields (X accepts "2T" multiples-of-T form)
//   --dispatchers D   cooperating dispatchers over the one cluster (default
//                     1 = the legacy single-dispatcher engine, bit-for-bit)
//   --dispatcher-split {uniform,weighted}
//                     how arrivals are thinned across the D dispatchers
//   --token-budget B  JIQ policies only: per-dispatcher cap on queued idle
//                     tokens (matched-message-rate comparisons); 0 = no cap
//
// Parsing is strict: unknown flags, switches given values (--paper=0),
// non-numeric or out-of-range values all throw std::invalid_argument with a
// message naming the flag; bench mains report it and exit non-zero.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "driver/experiment.h"

namespace stale::driver {

class Cli {
 public:
  // Parses argv. Throws std::invalid_argument on unknown flags unless they
  // are listed in `extra_flags` (flags that take a value) or `extra_switches`
  // (boolean flags).
  Cli(int argc, const char* const* argv,
      const std::vector<std::string>& extra_flags = {},
      const std::vector<std::string>& extra_switches = {});

  bool has(const std::string& flag) const;
  std::string get(const std::string& flag, const std::string& fallback) const;
  double get_double(const std::string& flag, double fallback) const;
  std::int64_t get_int(const std::string& flag, std::int64_t fallback) const;

  bool csv() const { return has("csv"); }

  // Resolved worker-thread count: --jobs when given, else the STALE_JOBS
  // environment variable, else hardware_concurrency.
  int jobs() const;

  // Applies --paper/--fast/--num-jobs/--warmup/--trials/--seed/--jobs and
  // the fault flags to `config`, range-checking each value.
  void apply_run_scale(ExperimentConfig& config) const;

  // Applies just the fault flags (called by apply_run_scale; exposed for
  // drivers that manage run lengths themselves).
  void apply_faults(ExperimentConfig& config) const;

  // One-line description of the selected scale, for bench headers.
  std::string scale_description() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace stale::driver
