#include "driver/adaptive.h"

#include <stdexcept>

#include "sim/rng.h"

namespace stale::driver {

AdaptiveResult run_until_confident(const ExperimentConfig& config,
                                   const AdaptiveOptions& options) {
  if (options.relative_precision <= 0.0) {
    throw std::invalid_argument("run_until_confident: precision must be > 0");
  }
  if (options.min_trials < 2 || options.max_trials < options.min_trials) {
    throw std::invalid_argument(
        "run_until_confident: need 2 <= min_trials <= max_trials");
  }

  AdaptiveResult outcome;
  for (int trial = 0; trial < options.max_trials; ++trial) {
    const std::uint64_t seed = sim::trial_seed(config.base_seed, trial);
    const TrialResult result = run_trial(config, seed);
    outcome.result.across_trials.add(result.mean_response);
    outcome.result.trial_means.push_back(result.mean_response);
    outcome.trials_used = trial + 1;
    if (outcome.trials_used >= options.min_trials) {
      const double mean = outcome.result.mean();
      const double half_width = outcome.result.ci90();
      if (mean > 0.0 && half_width / mean <= options.relative_precision) {
        outcome.converged = true;
        break;
      }
    }
  }
  return outcome;
}

}  // namespace stale::driver
