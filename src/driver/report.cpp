#include "driver/report.h"

#include <limits>
#include <ostream>
#include <sstream>

namespace stale::driver {

namespace {

void append_counter(std::ostringstream& os, const char* name,
                    std::uint64_t value) {
  if (value == 0) return;
  if (os.tellp() > 0) os << ' ';
  os << name << '=' << value;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void write_fault_object(std::ostream& os, const fault::FaultStats& f) {
  os << "{\"crashes\": " << f.crashes << ", \"recoveries\": " << f.recoveries
     << ", \"jobs_lost\": " << f.jobs_lost
     << ", \"jobs_requeued\": " << f.jobs_requeued
     << ", \"dispatch_retries\": " << f.dispatch_retries
     << ", \"jobs_dropped\": " << f.jobs_dropped
     << ", \"updates_lost\": " << f.updates_lost
     << ", \"updates_delayed\": " << f.updates_delayed
     << ", \"estimator_drops\": " << f.estimator_drops
     << ", \"stale_fallbacks\": " << f.stale_fallbacks
     << ", \"sanitizer_fixes\": " << f.sanitizer_fixes << "}";
}

}  // namespace

std::string format_fault_stats(const fault::FaultStats& stats) {
  std::ostringstream os;
  append_counter(os, "crashes", stats.crashes);
  append_counter(os, "recoveries", stats.recoveries);
  append_counter(os, "jobs_lost", stats.jobs_lost);
  append_counter(os, "jobs_requeued", stats.jobs_requeued);
  append_counter(os, "dispatch_retries", stats.dispatch_retries);
  append_counter(os, "jobs_dropped", stats.jobs_dropped);
  append_counter(os, "updates_lost", stats.updates_lost);
  append_counter(os, "updates_delayed", stats.updates_delayed);
  append_counter(os, "estimator_drops", stats.estimator_drops);
  append_counter(os, "stale_fallbacks", stats.stale_fallbacks);
  append_counter(os, "sanitizer_fixes", stats.sanitizer_fixes);
  std::string text = os.str();
  return text.empty() ? "none" : text;
}

void write_json_report(std::ostream& os, const ExperimentConfig& config,
                       const ExperimentResult& result, int trials_used) {
  const auto saved_precision = os.precision();
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\"config\": {"
     << "\"num_servers\": " << config.num_servers
     << ", \"lambda\": " << config.lambda
     << ", \"model\": \"" << update_model_name(config.model) << "\""
     << ", \"update_interval\": " << config.update_interval
     << ", \"policy\": \"" << json_escape(config.policy) << "\""
     << ", \"job_size\": \"" << json_escape(config.job_size) << "\""
     << ", \"rate_estimator\": \"" << json_escape(config.rate_estimator)
     << "\""
     << ", \"num_jobs\": " << config.num_jobs
     << ", \"warmup_jobs\": " << config.warmup_jobs
     << ", \"trials\": " << config.trials
     << ", \"seed\": " << config.base_seed
     << ", \"fault_spec\": \"" << json_escape(config.fault.to_string())
     << "\""
     << ", \"churn_spec\": \"" << json_escape(config.churn.to_string())
     << "\""
     << ", \"dispatchers\": " << config.dispatchers
     << ", \"dispatcher_split\": \""
     << dispatch::dispatcher_split_name(config.dispatcher_split) << "\""
     << "}, \"result\": {"
     << "\"mean_response\": " << result.mean()
     << ", \"ci90\": " << result.ci90() << ", \"trials_used\": " << trials_used
     << ", \"trial_means\": [";
  for (std::size_t i = 0; i < result.trial_means.size(); ++i) {
    if (i > 0) os << ", ";
    os << result.trial_means[i];
  }
  os << "], \"faults\": ";
  write_fault_object(os, result.faults);
  os << "}}\n";
  os.precision(saved_precision);
}

}  // namespace stale::driver
