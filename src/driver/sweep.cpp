#include "driver/sweep.h"

#include <ostream>
#include <sstream>

#include "driver/table.h"

namespace stale::driver {

void run_sweep(const ExperimentConfig& base, const std::string& x_label,
               const std::vector<double>& x_values,
               const std::vector<std::string>& policies,
               const std::function<void(ExperimentConfig&, double)>& mutate,
               std::ostream& os, const SweepOptions& options) {
  std::vector<std::string> columns{x_label};
  for (const auto& policy : policies) columns.push_back(policy);
  Table table(std::move(columns));

  for (double x : x_values) {
    std::vector<std::string> row{Table::fmt(x, 3)};
    for (const auto& policy : policies) {
      ExperimentConfig config = base;
      mutate(config, x);
      config.policy = policy;
      const ExperimentResult result = run_experiment(config);
      if (options.box_stats) {
        const sim::BoxStats box = result.box();
        std::ostringstream cell;
        cell << Table::fmt(box.median, options.precision) << " ["
             << Table::fmt(box.p25, options.precision) << ","
             << Table::fmt(box.p75, options.precision) << "] ("
             << Table::fmt(box.min, options.precision) << ".."
             << Table::fmt(box.max, options.precision) << ")";
        row.push_back(cell.str());
      } else {
        row.push_back(Table::fmt_ci(result.mean(), result.ci90(),
                                    options.precision));
      }
      if (options.progress != nullptr) {
        *options.progress << "." << std::flush;
      }
    }
    table.add_row(std::move(row));
  }
  if (options.progress != nullptr) *options.progress << "\n";
  table.print(os, options.csv);
}

void run_t_sweep(const ExperimentConfig& base,
                 const std::vector<double>& t_values,
                 const std::vector<std::string>& policies, std::ostream& os,
                 const SweepOptions& options) {
  run_sweep(
      base, "T", t_values, policies,
      [](ExperimentConfig& config, double t) { config.update_interval = t; },
      os, options);
}

std::vector<double> default_t_grid(double max_t) {
  static constexpr double kGrid[] = {0.1, 0.25, 0.5, 1.0,  2.0,  4.0,
                                     8.0, 16.0, 32.0, 64.0, 128.0};
  std::vector<double> values;
  for (double t : kGrid) {
    if (t <= max_t) values.push_back(t);
  }
  return values;
}

}  // namespace stale::driver
