#include "driver/sweep.h"

#include <ostream>
#include <sstream>

#include "check/sync.h"
#include "check/thread_annotations.h"
#include "driver/report.h"
#include "driver/table.h"
#include "runtime/thread_pool.h"

namespace stale::driver {

namespace {

std::string format_cell(const ExperimentResult& result,
                        const SweepOptions& options) {
  if (options.box_stats) {
    const sim::BoxStats box = result.box();
    std::ostringstream cell;
    cell << Table::fmt(box.median, options.precision) << " ["
         << Table::fmt(box.p25, options.precision) << ","
         << Table::fmt(box.p75, options.precision) << "] ("
         << Table::fmt(box.min, options.precision) << ".."
         << Table::fmt(box.max, options.precision) << ")";
    return cell.str();
  }
  return Table::fmt_ci(result.mean(), result.ci90(), options.precision);
}

// Serializes the per-cell progress dots emitted by concurrent workers onto
// one shared stream.
struct ProgressSink {
  explicit ProgressSink(std::ostream* os) : os_(os) {}

  void tick() {
    check::MutexLock lock(mutex_);
    if (os_ != nullptr) *os_ << "." << std::flush;
  }

 private:
  check::Mutex mutex_;
  std::ostream* os_ STALE_GUARDED_BY(mutex_);
};

}  // namespace

void run_sweep(const ExperimentConfig& base, const std::string& x_label,
               const std::vector<double>& x_values,
               const std::vector<std::string>& policies,
               const std::function<void(ExperimentConfig&, double)>& mutate,
               std::ostream& os, const SweepOptions& options) {
  std::vector<std::string> columns{x_label};
  for (const auto& policy : policies) columns.push_back(policy);
  Table table(std::move(columns));

  // Compute every (x-value x policy) cell into a pre-sized grid; the grid is
  // filled by cell index, so the table below comes out in deterministic
  // order no matter which worker finished first.
  const std::size_t cells = x_values.size() * policies.size();
  std::vector<std::string> grid(cells);
  std::vector<fault::FaultStats> cell_faults(cells);
  ProgressSink progress(options.progress);

  const auto compute_cell = [&](std::size_t index) {
    const std::size_t xi = index / policies.size();
    const std::size_t pi = index % policies.size();
    ExperimentConfig config = base;
    mutate(config, x_values[xi]);
    config.policy = policies[pi];
    // Cells are the unit of parallelism here; trials within a cell run
    // serially on this worker (nested pools would oversubscribe).
    config.jobs = 1;
    const ExperimentResult result = run_experiment(config);
    grid[index] = format_cell(result, options);
    cell_faults[index] = result.faults;
    if (options.progress != nullptr) progress.tick();
  };

  const int jobs = std::min<int>(
      runtime::resolve_jobs(options.jobs != 0 ? options.jobs : base.jobs),
      static_cast<int>(cells == 0 ? 1 : cells));
  if (jobs > 1 && !runtime::ThreadPool::on_worker_thread()) {
    runtime::ThreadPool pool(jobs);
    runtime::parallel_for_each(pool, cells, compute_cell);
  } else {
    for (std::size_t index = 0; index < cells; ++index) compute_cell(index);
  }

  for (std::size_t xi = 0; xi < x_values.size(); ++xi) {
    std::vector<std::string> row{Table::fmt(x_values[xi], 3)};
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      row.push_back(std::move(grid[xi * policies.size() + pi]));
    }
    table.add_row(std::move(row));
  }
  if (options.progress != nullptr) *options.progress << "\n";
  table.print(os, options.csv);

  // Fault-injected sweeps append per-policy counter totals as '#' comment
  // lines, which the CSV -> SVG pipeline (parse_sweep_csv) skips.
  if (base.fault.any()) {
    for (std::size_t pi = 0; pi < policies.size(); ++pi) {
      fault::FaultStats totals;
      for (std::size_t xi = 0; xi < x_values.size(); ++xi) {
        totals.merge(cell_faults[xi * policies.size() + pi]);
      }
      os << "# faults[" << policies[pi]
         << "]: " << format_fault_stats(totals) << "\n";
    }
  }
}

void run_t_sweep(const ExperimentConfig& base,
                 const std::vector<double>& t_values,
                 const std::vector<std::string>& policies, std::ostream& os,
                 const SweepOptions& options) {
  run_sweep(
      base, "T", t_values, policies,
      [](ExperimentConfig& config, double t) { config.update_interval = t; },
      os, options);
}

std::vector<double> default_t_grid(double max_t) {
  static constexpr double kGrid[] = {0.1, 0.25, 0.5, 1.0,  2.0,  4.0,
                                     8.0, 16.0, 32.0, 64.0, 128.0};
  std::vector<double> values;
  for (double t : kGrid) {
    if (t <= max_t) values.push_back(t);
  }
  return values;
}

}  // namespace stale::driver
