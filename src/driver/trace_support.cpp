#include "driver/trace_support.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace stale::driver {

TraceReport run_traced_trial(const ExperimentConfig& config,
                             std::uint64_t seed,
                             const TraceRunOptions& options) {
  TraceReport report;
  report.recorder = obs::TraceRecorder(options.recorder);

  ExperimentConfig traced = config;
  traced.trace_sink = &report.recorder;
  traced.trace_sink_for_trial = nullptr;
  report.trial = run_trial(traced, seed);

  report.t_end = report.recorder.end_time();
  // Expected end of warmup: the mean arrival rate is exact, so this lines up
  // with the metrics' warmup cutoff to within arrival-process noise.
  report.t_begin = std::min(
      static_cast<double>(config.warmup_jobs) / config.total_rate(),
      report.t_end);
  report.probe_interval = options.probe_interval > 0.0
                              ? options.probe_interval
                              : config.update_interval / 8.0;

  if (report.t_end > report.t_begin) {
    // The probe windows are half-open [begin, end); the last dispatch
    // decision sits exactly at end_time() (the final arrival is the last
    // kernel event), so nudge the upper bound to keep it in the report.
    const double end_inclusive = std::nextafter(
        report.t_end, std::numeric_limits<double>::infinity());
    report.trajectory = obs::sample_queue_trajectory(
        report.recorder, report.probe_interval, report.t_begin, report.t_end);
    report.share = obs::compute_dispatch_share(report.recorder, report.t_begin,
                                               end_inclusive);
    obs::HerdOptions herd;
    herd.t_begin = report.t_begin;
    herd.t_end = report.t_end;
    herd.probe_interval = report.probe_interval;
    herd.phase_length = config.update_interval;
    report.herd = obs::detect_herd(report.recorder, herd);
  }
  return report;
}

void print_trace_summary(std::ostream& out, const ExperimentConfig& config,
                         const TraceReport& report) {
  const obs::TraceRecorder& rec = report.recorder;
  out << "--- trace summary ---------------------------------------------\n"
      << "policy " << config.policy << ", model "
      << update_model_name(config.model) << ", T=" << config.update_interval
      << ", n=" << config.num_servers << "\n"
      << "events: " << rec.events().size() << " total ("
      << rec.count(obs::TraceEventKind::kDispatch) << " dispatches, "
      << rec.count(obs::TraceEventKind::kDeparture) << " departures, "
      << rec.count(obs::TraceEventKind::kBoardRefresh) << " refreshes, "
      << rec.count(obs::TraceEventKind::kRefreshFault) << " refresh faults, "
      << rec.count(obs::TraceEventKind::kDecision) << " decisions)\n"
      << "probability vectors built: " << rec.probability_builds() << "\n"
      << "analysis window: [" << report.t_begin << ", " << report.t_end
      << "], probe interval " << report.probe_interval << "\n"
      << "dispatch share: top server " << report.share.top_server()
      << " received " << 100.0 * report.share.top_share() << "% of "
      << report.share.total << " decisions (uniform: "
      << 100.0 * report.herd.uniform_share << "%)\n"
      << "herd diagnostics over " << report.herd.phases << " phases:\n"
      << "  per-phase concentration: mean "
      << 100.0 * report.herd.mean_concentration << "%, peak "
      << 100.0 * report.herd.peak_concentration << "%\n"
      << "  queue swing within a phase: " << report.herd.amplitude
      << " jobs (whole-window " << report.herd.global_swing << ")\n"
      << "  oscillation period: " << report.herd.oscillation_period
      << " (autocorrelation " << report.herd.autocorr_peak << ")\n"
      << "herd effect: " << (report.herd.herding() ? "DETECTED" : "not detected")
      << "\n"
      << "---------------------------------------------------------------\n";
}

}  // namespace stale::driver
