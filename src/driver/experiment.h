// Experiment configuration and the seeded trial runner that reproduces the
// paper's methodology: simulate N job arrivals into an n-server FIFO cluster
// under a staleness model + dispatch policy, discard the first W jobs as
// warmup, report the mean response time; repeat over independent seeds and
// summarize with 90% confidence intervals (and box stats for the
// heavy-tailed workloads).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dispatch/dispatcher_set.h"
#include "fault/fault_spec.h"
#include "fault/fault_stats.h"
#include "health/churn_spec.h"
#include "loadinfo/delay_distribution.h"
#include "obs/trace_sink.h"
#include "policy/policy.h"
#include "sim/stats.h"
#include "workload/replay.h"

namespace stale::driver {

enum class UpdateModel {
  kPeriodic,        // Section 3.1 bulletin board
  kContinuous,      // Section 3.1 delayed view
  kUpdateOnAccess,  // Section 3.2 per-client snapshots
  kIndividual,      // extension: per-server de-phased refresh
};

std::string update_model_name(UpdateModel model);

struct ExperimentConfig {
  // --- system ---
  int num_servers = 10;
  double lambda = 0.9;  // per-server offered load (fraction of service rate)

  // --- staleness model ---
  UpdateModel model = UpdateModel::kPeriodic;
  double update_interval = 1.0;  // T, in units of mean service time
  // Continuous model only:
  loadinfo::DelayKind delay_kind = loadinfo::DelayKind::kConstant;
  bool know_actual_age = false;  // Figure 7 vs Figure 6
  // Update-on-access only:
  bool bursty = false;                       // Figure 9
  double burst_mean_length = 10.0;           // mean requests per burst
  double burst_within_gap_fraction = 0.01;   // within-burst gap = frac * T
  // Minimum jobs each client must launch; the run is extended if needed
  // (paper: "each client launches at least 1,000 jobs"). 0 disables.
  std::uint64_t min_jobs_per_client = 0;

  // --- algorithm ---
  std::string policy = "basic_li";  // see policy/policy_factory.h

  // Board representation on the dispatch path (policy/policy.h). kAuto picks
  // bucketed for clusters of kBucketedAutoThreshold+ servers when the run is
  // eligible; explicit kBucketed on an ineligible run (fault injection,
  // update-on-access) is rejected by validation. Representation choice never
  // changes per-level dispatch distributions — only the RNG draw sequence
  // (so paired vector/bucketed runs are statistically, not bit-, identical).
  policy::BoardRepr board_repr = policy::BoardRepr::kAuto;

  // --- multi-dispatcher scale-out (src/dispatch/) ---
  // Number of cooperating dispatchers over the one cluster. 1 (the default)
  // keeps the legacy single-dispatcher trial engine, bit-for-bit. With D > 1
  // — or with a JIQ policy, whose token state needs the engine even at D = 1
  // — the run routes through run_multi_dispatcher_trial: each dispatcher
  // gets its own board instance (periodic boards de-phased by d*T/D,
  // individual boards independently offset) and its own RNG stream split off
  // the trial stream, and arrivals are thinned across dispatchers. Board
  // models only (periodic/individual); mutually exclusive with fault
  // injection (churn is supported — each dispatcher earns its own Membership
  // view).
  int dispatchers = 1;
  dispatch::DispatcherSplit dispatcher_split =
      dispatch::DispatcherSplit::kUniform;
  // JIQ policies only: per-dispatcher cap on queued idle tokens, so JIQ can
  // be compared against LI at a matched message rate. 0 = unbounded.
  int jiq_token_budget = 0;

  // --- workload ---
  std::string job_size = "exp:1";  // see workload/job_size.h

  // Arrival-process spec (workload/arrival_spec.h): "poisson" (default,
  // bit-identical to the historical inline draw), "mmpp:...", "ramp:...",
  // "flash:...", or "trace:FILE". The base rate is total_rate(), so --lambda
  // still sets the overall scale. Board models only for non-poisson specs.
  std::string arrival_spec = "poisson";

  // Replay of a recorded live run (workload/replay.h), set up by
  // configure_replay(): arrivals and job sizes come from the trace, verbatim.
  // Overrides arrival_spec and job_size when non-null. Shared because trials
  // run on worker threads; the trace itself is immutable (each trial builds
  // its own cursor-holding ReplayProcess/TraceSizes from it).
  std::shared_ptr<const workload::ReplayTrace> replay;

  // --- fault injection (src/fault/) ---
  // Default-constructed spec = no faults; the fault trial path is only taken
  // when fault.any(). Not supported for the update_on_access model (there is
  // no refresh stream to degrade; validate() rejects the combination).
  fault::FaultSpec fault;

  // --- membership churn + health subsystem (src/health/) ---
  // Default-constructed spec = no churn; the churn trial path is only taken
  // when churn.any(). Mutually exclusive with fault injection (the fault
  // path hands the dispatcher ground-truth liveness; the churn path makes it
  // earn a view through the Membership state machine). Board models only
  // (periodic/individual): the continuous and update_on_access models have
  // no per-server report stream for the health layer to watch.
  health::ChurnSpec churn;

  // --- arrival-rate knowledge (Figures 12-13) ---
  // The policy is told lambda_total = n * lambda_estimate * error_factor,
  // where lambda_estimate defaults to the true per-server lambda.
  double lambda_error_factor = 1.0;
  double lambda_estimate_per_server = -1.0;  // < 0: use the true lambda
  // Online estimation ablation: "told" (default, uses the fields above),
  // "conservative" (believe n * 1.0, the paper's max-throughput rule),
  // "ewma:TAU" or "windowed:W" (learn the rate from observed arrivals).
  std::string rate_estimator = "told";

  // --- run lengths ---
  std::uint64_t num_jobs = 120'000;
  std::uint64_t warmup_jobs = 30'000;
  int trials = 5;
  std::uint64_t base_seed = 0x5EEDBA5EULL;

  // --- parallelism ---
  // Worker threads used by run_experiment to run trials concurrently.
  // 1 = serial (library default); 0 or negative = auto (STALE_JOBS env, else
  // hardware_concurrency — see runtime/thread_pool.h). Results are
  // bit-identical for every value: each trial derives an independent RNG
  // stream from sim::trial_seed(base_seed, trial) and aggregation happens by
  // trial index, not arrival order.
  int jobs = 1;

  // Retain per-job response times so TrialResult carries tail percentiles
  // (p50/p95/p99). Costs 8 bytes per measured job.
  bool keep_response_samples = false;

  // --- observability (src/obs/) ---
  // Trace sink wired through the whole trial (cluster, board, policy,
  // dispatch decisions). Sinks are pure observers: any run is bit-identical
  // with and without one attached (tested). Not owned; must outlive the run.
  obs::TraceSink* trace_sink = nullptr;
  // Per-trial sink factory for parallel traced runs: trials execute on
  // worker threads concurrently, so they must not share one recorder. When
  // set, it overrides trace_sink; returning nullptr leaves a trial untraced.
  std::function<obs::TraceSink*(int trial)> trace_sink_for_trial;

  // Aggregate arrival rate lambda * n.
  double total_rate() const { return lambda * num_servers; }

  // What the policy believes the aggregate rate is.
  double believed_total_rate() const {
    const double per_server = lambda_estimate_per_server >= 0.0
                                  ? lambda_estimate_per_server
                                  : lambda;
    return per_server * num_servers * lambda_error_factor;
  }

  // Whether this run dispatches through the bucketed (counted) board path.
  // Fault runs and update-on-access never do, regardless of board_repr
  // (validate() rejects an explicit kBucketed request for those). Churn runs
  // may: the health layer retires quarantined servers from the level index,
  // so the counted representation stays faithful to the candidate set.
  bool resolved_bucketed() const {
    if (board_repr == policy::BoardRepr::kVector) return false;
    if (fault.any() || model == UpdateModel::kUpdateOnAccess) return false;
    if (board_repr == policy::BoardRepr::kBucketed) return true;
    return num_servers >= policy::kBucketedAutoThreshold;
  }
};

struct TrialResult {
  double mean_response = 0.0;
  std::uint64_t measured_jobs = 0;
  std::uint64_t total_jobs = 0;
  double sim_end_time = 0.0;
  // Queue-length dispersion at arrival epochs (unbiased by PASTA), sampled
  // after warmup: the herd effect shows up here as an exploding stddev/max
  // long before the mean queue length moves. Collected by the board-model
  // trials (periodic/continuous/individual).
  double mean_queue_stddev = 0.0;
  double mean_queue_max = 0.0;
  double mean_queue_length = 0.0;
  // Response-time percentiles; populated only when
  // ExperimentConfig::keep_response_samples is set.
  double p50_response = 0.0;
  double p90_response = 0.0;
  double p95_response = 0.0;
  double p99_response = 0.0;
  // Times a finite arrival/size trace looped back to its start to keep
  // feeding the trial (trace/replay workloads only; 0 elsewhere). Nonzero
  // means the run consumed more jobs than the recording holds.
  std::uint64_t trace_wraps = 0;
  // Fault/degradation counters (all zero for fault-free runs). The explicit
  // {} gives the member a default member initializer, so designated-init
  // construction sites that omit it stay -Wmissing-field-initializers-clean.
  fault::FaultStats faults{};
};

struct ExperimentResult {
  sim::RunningStats across_trials;  // of per-trial mean response times
  std::vector<double> trial_means;
  fault::FaultStats faults{};  // summed across trials
  std::uint64_t trace_wraps = 0;  // max over trials (see TrialResult)

  double mean() const { return across_trials.mean(); }
  double ci90() const { return across_trials.ci90_half_width(); }
  sim::BoxStats box() const { return sim::BoxStats::from_sample(trial_means); }
};

// Runs one simulation trial with the given seed.
TrialResult run_trial(const ExperimentConfig& config, std::uint64_t seed);

// Runs config.trials independent trials (seeds derived from base_seed).
ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace stale::driver
