#include "driver/receiver_driven.h"

#include <cmath>
#include <deque>
#include <stdexcept>
#include <vector>

#include "policy/policy.h"
#include "policy/policy_factory.h"
#include "queueing/metrics.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "workload/job_size.h"

namespace stale::driver {

namespace {

struct QueuedJob {
  double arrival;
  double size;
};

// Event-kernel cluster with migratable queues. Service is FIFO within a
// server; a steal removes the victim's most recently queued waiting job (the
// youngest — preserving FIFO order for the jobs ahead of it).
class StealingSystem {
 public:
  StealingSystem(const ExperimentConfig& config,
                 const StealingOptions& options, std::uint64_t seed)
      : config_(config),
        options_(options),
        rng_(seed),
        policy_(policy::make_policy(config.policy)),
        job_size_(workload::make_job_size(config.job_size)),
        queues_(static_cast<std::size_t>(config.num_servers)),
        busy_(static_cast<std::size_t>(config.num_servers), false),
        board_(static_cast<std::size_t>(config.num_servers), 0),
        metrics_(config.warmup_jobs) {
    if (options.probe_count < 1) {
      throw std::invalid_argument("StealingOptions: probe_count must be >= 1");
    }
    if (options.migration_delay < 0.0 || options.min_waiting_to_steal < 1) {
      throw std::invalid_argument("StealingOptions: bad thresholds");
    }
  }

  TrialResult run() {
    refresh_handle_ = sim_.schedule_at(
        config_.update_interval,
        [this](sim::Simulator& s) { refresh_board(s); });
    schedule_next_arrival(sim_);
    sim_.run();
    return TrialResult{.mean_response = metrics_.mean_response(),
                       .measured_jobs = metrics_.measured_jobs(),
                       .total_jobs = metrics_.total_jobs(),
                       .sim_end_time = sim_.now()};
  }

  std::uint64_t migrations() const { return migrations_; }

 private:
  int total_load(int server) const {
    const auto& queue = queues_[static_cast<std::size_t>(server)];
    return static_cast<int>(queue.size()) +
           (busy_[static_cast<std::size_t>(server)] ? 1 : 0);
  }

  void refresh_board(sim::Simulator& s) {
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      board_[i] = total_load(static_cast<int>(i));
    }
    board_time_ = s.now();
    ++board_version_;
    refresh_handle_ = s.schedule_after(
        config_.update_interval,
        [this](sim::Simulator& s2) { refresh_board(s2); });
  }

  void schedule_next_arrival(sim::Simulator& s) {
    if (launched_ >= config_.num_jobs) return;
    ++launched_;
    const double gap =
        -std::log(rng_.next_double_open0()) / config_.total_rate();
    s.schedule_after(gap, [this](sim::Simulator& s2) { on_arrival(s2); });
  }

  void on_arrival(sim::Simulator& s) {
    policy::DispatchContext context;
    context.loads = board_;
    context.age = s.now() - board_time_;
    context.lambda_total = config_.believed_total_rate();
    context.phase_length = config_.update_interval;
    context.phase_elapsed = context.age;
    context.info_version = board_version_;
    const int server = policy_->select(context, rng_);

    queues_[static_cast<std::size_t>(server)].push_back(
        QueuedJob{s.now(), job_size_->sample(rng_)});
    if (!busy_[static_cast<std::size_t>(server)]) {
      begin_service(s, server, /*setup_delay=*/0.0);
    }
    schedule_next_arrival(s);
  }

  // Starts the front-of-queue job on `server`, charging an optional setup
  // delay (used for migration transfers).
  void begin_service(sim::Simulator& s, int server, double setup_delay) {
    auto& queue = queues_[static_cast<std::size_t>(server)];
    busy_[static_cast<std::size_t>(server)] = true;
    const QueuedJob job = queue.front();
    s.schedule_after(setup_delay + job.size,
                     [this, server, job](sim::Simulator& s2) {
                       on_departure(s2, server, job);
                     });
  }

  void on_departure(sim::Simulator& s, int server, const QueuedJob& job) {
    metrics_.record(s.now() - job.arrival);
    auto& queue = queues_[static_cast<std::size_t>(server)];
    queue.pop_front();
    if (!queue.empty()) {
      begin_service(s, server, 0.0);
      return;
    }
    busy_[static_cast<std::size_t>(server)] = false;
    if (options_.enabled && try_steal(s, server)) return;
    maybe_finish(s);
  }

  // Probes options_.probe_count random other servers with *current* state
  // and steals the youngest waiting job from the most backlogged one.
  bool try_steal(sim::Simulator& s, int thief) {
    const int n = config_.num_servers;
    int victim = -1;
    int victim_waiting = options_.min_waiting_to_steal - 1;
    for (int probe = 0; probe < options_.probe_count; ++probe) {
      int candidate =
          static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(n - 1)));
      if (candidate >= thief) ++candidate;  // uniform over peers
      const auto& queue = queues_[static_cast<std::size_t>(candidate)];
      const int waiting = busy_[static_cast<std::size_t>(candidate)]
                              ? static_cast<int>(queue.size()) - 1
                              : static_cast<int>(queue.size());
      if (waiting > victim_waiting) {
        victim_waiting = waiting;
        victim = candidate;
      }
    }
    if (victim < 0) return false;

    auto& victim_queue = queues_[static_cast<std::size_t>(victim)];
    const QueuedJob job = victim_queue.back();
    victim_queue.pop_back();
    queues_[static_cast<std::size_t>(thief)].push_back(job);
    ++migrations_;
    begin_service(s, thief, options_.migration_delay);
    return true;
  }

  void maybe_finish(sim::Simulator& s) {
    if (launched_ < config_.num_jobs) return;
    for (bool busy : busy_) {
      if (busy) return;
    }
    for (const auto& queue : queues_) {
      if (!queue.empty()) return;
    }
    s.cancel(refresh_handle_);
  }

  const ExperimentConfig config_;
  const StealingOptions options_;
  sim::Rng rng_;
  policy::PolicyPtr policy_;
  sim::DistributionPtr job_size_;
  sim::Simulator sim_;
  std::vector<std::deque<QueuedJob>> queues_;
  std::vector<bool> busy_;
  std::vector<int> board_;
  double board_time_ = 0.0;
  std::uint64_t board_version_ = 1;
  std::uint64_t launched_ = 0;
  std::uint64_t migrations_ = 0;
  sim::EventHandle refresh_handle_;
  queueing::ResponseMetrics metrics_;
};

}  // namespace

TrialResult run_receiver_driven_trial(const ExperimentConfig& config,
                                      const StealingOptions& options,
                                      std::uint64_t seed) {
  if (config.model != UpdateModel::kPeriodic) {
    throw std::invalid_argument(
        "run_receiver_driven_trial: periodic model only");
  }
  if (config.num_servers < 2) {
    throw std::invalid_argument(
        "run_receiver_driven_trial: stealing needs >= 2 servers");
  }
  StealingSystem system(config, options, seed);
  return system.run();
}

}  // namespace stale::driver
