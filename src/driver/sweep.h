// Sweep helpers shared by the figure benches: run a grid of (x-value x
// policy) experiments and print one row per x-value with one column per
// policy — exactly the series layout of the paper's figures.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "driver/experiment.h"

namespace stale::driver {

struct SweepOptions {
  bool csv = false;
  // Cell contents: mean with 90% CI half-width ("1.234+-0.05"), or the
  // five-number box summary used for the heavy-tailed figures.
  bool box_stats = false;
  int precision = 4;
  std::ostream* progress = nullptr;  // optional per-cell progress dots
  // Worker threads used to run (x-value x policy) cells concurrently.
  // 0 = inherit the base config's `jobs` field (what the CLI's --jobs /
  // STALE_JOBS sets), 1 = serial, N = N threads, negative = auto. Rows are
  // always printed in grid order and cell values are bit-identical to a
  // serial run; only the progress dots arrive in completion order.
  int jobs = 0;
};

// Runs `mutate(config, x)`-customized experiments for every x in `x_values`
// and every policy in `policies`, printing a table whose first column is
// `x_label`. `mutate` is applied to a copy of `base` before setting the
// policy; typically it sets update_interval or lambda.
void run_sweep(const ExperimentConfig& base, const std::string& x_label,
               const std::vector<double>& x_values,
               const std::vector<std::string>& policies,
               const std::function<void(ExperimentConfig&, double)>& mutate,
               std::ostream& os, const SweepOptions& options = {});

// Common case: sweep the update interval T.
void run_t_sweep(const ExperimentConfig& base,
                 const std::vector<double>& t_values,
                 const std::vector<std::string>& policies, std::ostream& os,
                 const SweepOptions& options = {});

// The default T grid used by the periodic/continuous figures (log-spaced,
// mirroring the paper's x-axes). `max_t` trims the grid for slow modes.
std::vector<double> default_t_grid(double max_t);

}  // namespace stale::driver
