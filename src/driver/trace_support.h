// Traced-trial runner: one seeded trial with a TraceRecorder attached, plus
// the post-processing the CLI surfaces — queue trajectories, dispatch
// shares, and the herd-effect diagnostic. The obs layer knows nothing about
// experiments; this file is the glue that does.
#pragma once

#include <ostream>

#include "driver/experiment.h"
#include "obs/herd.h"
#include "obs/probe.h"
#include "obs/trace_recorder.h"

namespace stale::driver {

struct TraceRunOptions {
  // Trajectory sampling interval; <= 0 picks update_interval / 8.
  double probe_interval = 0.0;
  obs::RecorderOptions recorder;
};

struct TraceReport {
  TrialResult trial;
  obs::TraceRecorder recorder;
  obs::QueueTrajectory trajectory;  // analysis window (post-warmup)
  obs::DispatchShare share;
  obs::HerdReport herd;
  double t_begin = 0.0;  // analysis window start (expected end of warmup)
  double t_end = 0.0;
  double probe_interval = 0.0;  // the resolved interval
};

// Runs one trial of `config` with a recorder attached and post-processes the
// trace. The analysis window starts at the expected end of warmup
// (warmup_jobs / total arrival rate) and ends at the last recorded event, so
// the diagnostics measure steady state like the response metrics do.
TraceReport run_traced_trial(const ExperimentConfig& config,
                             std::uint64_t seed,
                             const TraceRunOptions& options = {});

// Human-readable block: event tallies, dispatch concentration, and the herd
// verdict with its evidence.
void print_trace_summary(std::ostream& out, const ExperimentConfig& config,
                         const TraceReport& report);

}  // namespace stale::driver
