// Multi-dispatcher trial engine: D dispatchers (src/dispatch/) over one
// cluster, each with its own board, staleness clock, and RNG stream. This is
// where the paper's herd warning compounds — D dispatchers independently
// misreading stale boards amplify each other — and where Join-Idle-Queue
// enters as the alternative with no staleness channel at all.
//
// Routing: run_trial() sends a config here when uses_multi_dispatcher() says
// so (dispatchers > 1, or a JIQ policy — token state needs this engine even
// at D = 1). A plain D = 1 config keeps the legacy engine, and this engine's
// own D = 1 draw order reproduces it bit-for-bit (tested), so the two
// answers agree exactly.
#pragma once

#include <cstdint>

#include "driver/experiment.h"

namespace stale::driver {

// True when `config` must run on the multi-dispatcher engine.
bool uses_multi_dispatcher(const ExperimentConfig& config);

// Runs one multi-dispatcher trial. Preconditions (enforced by validate()):
// board model is periodic or individual, no fault injection, dispatchers >= 1.
TrialResult run_multi_dispatcher_trial(const ExperimentConfig& config,
                                       std::uint64_t seed);

}  // namespace stale::driver
