// Machine-readable experiment reporting: a JSON record of one experiment
// (config + result + fault counters) for scripting, and the shared textual
// formatting of fault counters used by tables and sweep footers.
//
// The JSON writer is deliberately dependency-free (no third-party JSON
// library in this repo): the schema is flat, all keys are static, and the
// only escaping needed is for the few string-valued config fields.
#pragma once

#include <iosfwd>
#include <string>

#include "driver/experiment.h"

namespace stale::driver {

// "crashes=3 recoveries=2 jobs_lost=17 ..." — only nonzero counters are
// listed; "none" when every counter is zero.
std::string format_fault_stats(const fault::FaultStats& stats);

// Writes one JSON object:
//   {"config": {...}, "result": {"mean_response": ..., "ci90": ...,
//    "trial_means": [...], "faults": {...}}}
// `trials_used` is the actual trial count (adaptive runs may stop early).
void write_json_report(std::ostream& os, const ExperimentConfig& config,
                       const ExperimentResult& result, int trials_used);

}  // namespace stale::driver
