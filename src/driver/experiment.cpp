#include "driver/experiment.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/rate_estimator.h"
#include "driver/update_on_access.h"
#include "fault/fault_injector.h"
#include "fault/hardened_policy.h"
#include "loadinfo/continuous_view.h"
#include "loadinfo/individual_board.h"
#include "loadinfo/periodic_board.h"
#include "policy/policy_factory.h"
#include "queueing/cluster.h"
#include "queueing/load_stats.h"
#include "queueing/metrics.h"
#include "runtime/thread_pool.h"
#include "sim/rng.h"
#include "workload/bursty_process.h"
#include "workload/job_size.h"

namespace stale::driver {

std::string update_model_name(UpdateModel model) {
  switch (model) {
    case UpdateModel::kPeriodic:
      return "periodic";
    case UpdateModel::kContinuous:
      return "continuous";
    case UpdateModel::kUpdateOnAccess:
      return "update_on_access";
    case UpdateModel::kIndividual:
      return "individual";
  }
  throw std::logic_error("update_model_name: bad enum");
}

namespace {

void validate(const ExperimentConfig& config) {
  if (config.num_servers < 1) {
    throw std::invalid_argument("ExperimentConfig: num_servers must be >= 1");
  }
  if (config.lambda <= 0.0) {
    throw std::invalid_argument("ExperimentConfig: lambda must be > 0");
  }
  if (config.update_interval <= 0.0) {
    throw std::invalid_argument("ExperimentConfig: update_interval must be > 0");
  }
  if (config.warmup_jobs >= config.num_jobs) {
    throw std::invalid_argument("ExperimentConfig: warmup >= num_jobs");
  }
  if (config.trials < 1) {
    throw std::invalid_argument("ExperimentConfig: trials must be >= 1");
  }
  config.fault.validate();
  if (config.fault.any() && config.model == UpdateModel::kUpdateOnAccess) {
    throw std::invalid_argument(
        "ExperimentConfig: fault injection is not supported for the "
        "update_on_access model (per-client snapshot pulls have no refresh "
        "stream to degrade)");
  }
  if (config.board_repr == policy::BoardRepr::kBucketed) {
    if (config.fault.any()) {
      throw std::invalid_argument(
          "ExperimentConfig: board_repr=bucketed is incompatible with fault "
          "injection (per-server liveness reshaping needs the vector path)");
    }
    if (config.model == UpdateModel::kUpdateOnAccess) {
      throw std::invalid_argument(
          "ExperimentConfig: board_repr=bucketed is not supported for the "
          "update_on_access model (per-client snapshots have no shared "
          "board to bucket)");
    }
  }
}

// Builds the online rate estimator named by config.rate_estimator, or null
// for "told" (the fixed believed_total_rate is used instead).
core::RateEstimatorPtr make_rate_estimator(const ExperimentConfig& config) {
  const std::string& spec = config.rate_estimator;
  if (spec == "told") return nullptr;
  const double max_throughput = static_cast<double>(config.num_servers);
  if (spec == "conservative") {
    return std::make_unique<core::ConservativeRateEstimator>(max_throughput);
  }
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const double param =
      colon == std::string::npos ? 0.0 : std::stod(spec.substr(colon + 1));
  if (kind == "ewma") {
    return std::make_unique<core::EwmaRateEstimator>(param, max_throughput);
  }
  if (kind == "windowed") {
    return std::make_unique<core::WindowedRateEstimator>(param,
                                                         max_throughput);
  }
  throw std::invalid_argument("ExperimentConfig: unknown rate_estimator '" +
                              spec + "'");
}


// Fills the percentile fields of `result` from retained samples, if any.
void fill_percentiles(const queueing::ResponseMetrics& metrics,
                      TrialResult& result) {
  if (metrics.samples().empty()) return;
  std::vector<double> sorted = metrics.samples();
  std::sort(sorted.begin(), sorted.end());
  result.p50_response = sim::percentile_sorted(sorted, 0.50);
  result.p95_response = sim::percentile_sorted(sorted, 0.95);
  result.p99_response = sim::percentile_sorted(sorted, 0.99);
}

TrialResult run_board_trial(const ExperimentConfig& config,
                            std::uint64_t seed) {
  sim::Rng rng(seed);
  const bool continuous = config.model == UpdateModel::kContinuous;
  const double history_window =
      continuous ? loadinfo::ContinuousView::history_window_for(
                       config.delay_kind, config.update_interval)
                 : 0.0;
  queueing::Cluster cluster(config.num_servers, history_window);
  queueing::ResponseMetrics metrics(config.warmup_jobs,
                                    config.keep_response_samples);
  const auto policy = policy::make_policy(config.policy);
  const auto job_size = workload::make_job_size(config.job_size);
  const auto estimator = make_rate_estimator(config);
  const double believed_rate = config.believed_total_rate();
  const double arrival_rate = config.total_rate();

  loadinfo::PeriodicBoard board(config.num_servers, config.update_interval);
  sim::Rng offsets_rng = rng.split();
  loadinfo::IndividualBoard individual(config.num_servers,
                                       config.update_interval, offsets_rng);
  loadinfo::ContinuousView view(config.delay_kind, config.update_interval,
                                config.know_actual_age);
  queueing::LoadImbalanceStats imbalance;

  // Bucketed representation: the active board maintains a level index next
  // to its snapshot, the policies dispatch through O(#levels) kernels, and
  // (outside the continuous model, which needs load history) the cluster
  // advances lazily via its departure heap instead of O(n) sweeps.
  const bool bucketed = config.resolved_bucketed();
  if (bucketed) {
    switch (config.model) {
      case UpdateModel::kPeriodic:
        board.enable_level_index();
        break;
      case UpdateModel::kIndividual:
        individual.enable_level_index();
        break;
      case UpdateModel::kContinuous:
        view.enable_level_index();
        break;
      case UpdateModel::kUpdateOnAccess:
        throw std::logic_error("run_board_trial: wrong model");
    }
    if (!continuous) cluster.enable_lazy_advance();
  }

  obs::TraceSink* const trace = config.trace_sink;
  cluster.set_trace_sink(trace);
  board.set_trace_sink(trace);
  individual.set_trace_sink(trace);
  view.set_trace_sink(trace);

  double t = 0.0;
  for (std::uint64_t job = 0; job < config.num_jobs; ++job) {
    t += -std::log(rng.next_double_open0()) / arrival_rate;

    policy::DispatchContext context;
    if (estimator) {
      estimator->on_arrival(t);
      context.lambda_total = estimator->rate();
    } else {
      context.lambda_total = believed_rate;
    }
    switch (config.model) {
      case UpdateModel::kPeriodic:
        board.sync(cluster, t);
        context.loads = board.loads();
        context.age = board.age(t);
        context.phase_length = board.phase_length();
        context.phase_elapsed = context.age;
        context.info_version = board.version();
        if (bucketed) context.levels = &board.level_index();
        break;
      case UpdateModel::kIndividual:
        individual.sync(cluster, t);
        context.loads = individual.loads();
        context.age = individual.mean_age(t);
        context.info_version = individual.version();
        if (bucketed) context.levels = &individual.level_index();
        break;
      case UpdateModel::kContinuous:
        cluster.advance_to(t);
        view.observe(cluster, t, rng);
        context.loads = view.loads();
        context.age = view.reported_age();
        context.info_version = view.version();
        if (bucketed) context.levels = &view.level_index();
        break;
      case UpdateModel::kUpdateOnAccess:
        throw std::logic_error("run_board_trial: wrong model");
    }
    context.trace = trace;

    const int server = policy->select(context, rng);
    if (trace) trace->on_decision(t, server, context.age);
    const double size = job_size->sample(rng);
    // Snapshot the true pre-dispatch queue lengths (arrival epochs give
    // unbiased time averages) once the warmup has passed. The histogram
    // overload computes the same statistics in O(#levels) from the same
    // state (bit-identical — both reduce over exact integer sums).
    cluster.advance_to(t);
    if (job >= config.warmup_jobs) {
      if (bucketed) {
        imbalance.observe(cluster.level_histogram());
      } else {
        imbalance.observe(cluster.loads());
      }
    }
    const double departure = cluster.assign(t, server, size);
    metrics.record(departure - t);
  }

  TrialResult result{
      .mean_response = metrics.mean_response(),
      .measured_jobs = metrics.measured_jobs(),
      .total_jobs = metrics.total_jobs(),
      .sim_end_time = t,
      .mean_queue_stddev = imbalance.mean_within_snapshot_stddev(),
      .mean_queue_max = imbalance.mean_snapshot_max(),
      .mean_queue_length = imbalance.mean_queue_length()};
  fill_percentiles(metrics, result);
  return result;
}

// Fault-injected variant of run_board_trial. Structurally the same arrival
// loop, with four differences: (1) crash/recovery transitions interleave with
// board refreshes in global time order; (2) jobs are tagged and responses
// recorded at *completion* (a crash invalidates the departure precomputed at
// dispatch), with warmup applied by arrival index so the discarded set
// matches the serial methodology; (3) dispatch to a down server takes the
// bounded retry-with-backoff path, the backoff charged as a response-time
// penalty; (4) the policy sees the dispatcher-known liveness mask and its
// sanitize-event counter via the context.
TrialResult run_fault_board_trial(const ExperimentConfig& config,
                                  std::uint64_t seed) {
  sim::Rng rng(seed);
  const fault::FaultSpec& spec = config.fault;
  const auto n = static_cast<std::size_t>(config.num_servers);
  const bool continuous = config.model == UpdateModel::kContinuous;
  // Widen the continuous model's history window so fault-stretched delays
  // still resolve exact past-load queries (same 40-mean-delays quantile
  // rationale as ContinuousView::history_window_for).
  const double extra_allowance =
      continuous ? 40.0 * spec.update_extra_delay : 0.0;
  const double history_window =
      continuous ? loadinfo::ContinuousView::history_window_for(
                       config.delay_kind, config.update_interval) +
                       extra_allowance
                 : 0.0;
  queueing::Cluster cluster(config.num_servers, history_window);
  cluster.enable_job_tracking();
  queueing::ResponseMetrics metrics(config.warmup_jobs,
                                    config.keep_response_samples);
  policy::PolicyPtr policy = policy::make_policy(config.policy);
  const auto job_size = workload::make_job_size(config.job_size);
  const auto estimator = make_rate_estimator(config);
  const double believed_rate = config.believed_total_rate();
  const double arrival_rate = config.total_rate();

  loadinfo::PeriodicBoard board(config.num_servers, config.update_interval);
  sim::Rng offsets_rng = rng.split();
  loadinfo::IndividualBoard individual(config.num_servers,
                                       config.update_interval, offsets_rng);
  loadinfo::ContinuousView view(config.delay_kind, config.update_interval,
                                config.know_actual_age, extra_allowance);
  queueing::LoadImbalanceStats imbalance;

  obs::TraceSink* const trace = config.trace_sink;
  cluster.set_trace_sink(trace);
  board.set_trace_sink(trace);
  individual.set_trace_sink(trace);
  view.set_trace_sink(trace);

  fault::FaultInjector injector(spec, config.num_servers, rng);
  fault::FaultStats& stats = injector.stats();
  policy = fault::harden_policy(std::move(policy), spec,
                                config.update_interval, &stats);

  // Retry-backoff penalties by arrival index (tags are arrival indices, so
  // the penalty survives requeues and attaches to the final completion).
  std::vector<double> penalty(config.num_jobs, 0.0);
  std::vector<queueing::CompletedJob> done;

  const fault::FaultInjector::RequeueFn requeue =
      [&](double when, const queueing::DisplacedJob& job) -> bool {
    if (injector.alive_count() == 0) return false;
    const int target = policy::pick_uniform_alive(injector.alive(), n, rng);
    cluster.assign_tagged(when, target, job.size, job.tag, job.born);
    return true;
  };

  const auto sync_boards_to = [&](double when) {
    switch (config.model) {
      case UpdateModel::kPeriodic:
        board.sync(cluster, when, &injector);
        break;
      case UpdateModel::kIndividual:
        individual.sync(cluster, when, &injector);
        break;
      default:
        break;  // continuous: the view is materialized per request
    }
  };

  const auto record_completions = [&] {
    done.clear();
    cluster.drain_completions(done);
    for (const queueing::CompletedJob& job : done) {
      metrics.record_indexed(job.tag, job.response + penalty[job.tag]);
    }
  };

  double t = 0.0;
  for (std::uint64_t job = 0; job < config.num_jobs; ++job) {
    t += -std::log(rng.next_double_open0()) / arrival_rate;

    // Crash/recovery transitions and board refreshes interleave in global
    // time order: a board boundary before a crash must measure the
    // pre-crash cluster (at a tie the measurement wins — the last report
    // escapes just before the server dies).
    while (injector.next_transition_time() <= t) {
      const double when = injector.next_transition_time();
      sync_boards_to(when);
      injector.advance_to(cluster, when, requeue);
    }
    sync_boards_to(t);

    policy::DispatchContext context;
    if (estimator) {
      if (!injector.estimator_drop()) {
        estimator->on_arrival(t);
      } else if (trace) {
        trace->on_refresh_fault(t, obs::FaultTraceEvent::kEstimatorDrop, -1);
      }
      context.lambda_total = estimator->rate();
    } else {
      context.lambda_total = believed_rate;
    }
    switch (config.model) {
      case UpdateModel::kPeriodic:
        context.loads = board.loads();
        context.age = board.age(t);
        context.phase_length = board.phase_length();
        context.phase_elapsed = context.age;
        context.info_version = board.version();
        break;
      case UpdateModel::kIndividual:
        context.loads = individual.loads();
        context.age = individual.mean_age(t);
        context.info_version = individual.version();
        break;
      case UpdateModel::kContinuous:
        cluster.advance_to(t);
        view.observe(cluster, t, rng, &injector);
        context.loads = view.loads();
        context.age = view.reported_age();
        context.info_version = view.version();
        break;
      case UpdateModel::kUpdateOnAccess:
        throw std::logic_error("run_fault_board_trial: wrong model");
    }
    // Liveness changes must invalidate cached probability vectors even when
    // the board snapshot itself did not change.
    context.info_version ^= injector.transition_count() << 32;
    context.alive = injector.alive();
    context.sanitize_events = &stats.sanitizer_fixes;
    context.trace = trace;

    int server = policy->select(context, rng);
    if (trace) trace->on_decision(t, server, context.age);
    // The dispatcher discovers a down server on contact: bounded retry with
    // exponential backoff, each re-pick uniform over known-alive servers.
    double backoff_penalty = 0.0;
    bool dispatched = true;
    for (int attempt = 0; !cluster.up(server); ++attempt) {
      if (attempt >= spec.max_retries) {
        dispatched = false;
        break;
      }
      ++stats.dispatch_retries;
      backoff_penalty += spec.retry_backoff * std::ldexp(1.0, attempt);
      server = policy::pick_uniform_alive(injector.alive(), n, rng);
    }
    cluster.advance_to(t);
    if (job >= config.warmup_jobs) imbalance.observe(cluster.loads());
    if (dispatched) {
      const double size = job_size->sample(rng);
      cluster.assign_tagged(t, server, size, job, t);
      penalty[job] = backoff_penalty;
    } else {
      ++stats.jobs_dropped;
    }
    record_completions();
  }

  // Freeze the fault processes and let every in-flight job finish so its
  // response is recorded (requeued jobs may complete long after arrival).
  cluster.advance_to(cluster.latest_pending_departure());
  record_completions();

  TrialResult result{
      .mean_response = metrics.mean_response(),
      .measured_jobs = metrics.measured_jobs(),
      .total_jobs = metrics.total_jobs(),
      .sim_end_time = t,
      .mean_queue_stddev = imbalance.mean_within_snapshot_stddev(),
      .mean_queue_max = imbalance.mean_snapshot_max(),
      .mean_queue_length = imbalance.mean_queue_length()};
  result.faults = stats;
  fill_percentiles(metrics, result);
  return result;
}

TrialResult run_update_on_access_trial(const ExperimentConfig& config,
                                       std::uint64_t seed) {
  sim::Rng rng(seed);
  queueing::Cluster cluster(config.num_servers, 0.0);
  const auto policy = policy::make_policy(config.policy);
  const auto job_size = workload::make_job_size(config.job_size);
  const double arrival_rate = config.total_rate();

  // Client population sized so the mean per-client gap is the target T; the
  // gap is then chosen so the aggregate rate is exactly lambda * n despite
  // the rounding of the client count.
  const int clients = std::max(
      1, static_cast<int>(std::llround(arrival_rate * config.update_interval)));
  const double per_client_gap = static_cast<double>(clients) / arrival_rate;

  workload::ArrivalProcessPtr gaps;
  if (config.bursty) {
    gaps = std::make_unique<workload::BurstyProcess>(
        per_client_gap, config.burst_mean_length,
        config.burst_within_gap_fraction * per_client_gap);
  } else {
    gaps = std::make_unique<workload::PoissonProcess>(1.0 / per_client_gap);
  }

  // Extend the run so every client launches at least min_jobs_per_client
  // jobs, scaling the warmup share proportionally (paper Section 5.3).
  std::uint64_t num_jobs = config.num_jobs;
  std::uint64_t warmup = config.warmup_jobs;
  if (config.min_jobs_per_client > 0) {
    const std::uint64_t needed =
        config.min_jobs_per_client * static_cast<std::uint64_t>(clients);
    if (needed > num_jobs) {
      warmup = needed * warmup / num_jobs;
      num_jobs = needed;
    }
  }

  queueing::ResponseMetrics metrics(warmup, config.keep_response_samples);
  UpdateOnAccessEngine engine(cluster, *policy, *gaps, *job_size,
                              config.believed_total_rate(), clients, rng);
  engine.set_trace_sink(config.trace_sink);
  double t = 0.0;
  for (std::uint64_t job = 0; job < num_jobs; ++job) {
    t = engine.step(metrics);
  }
  TrialResult result{.mean_response = metrics.mean_response(),
                     .measured_jobs = metrics.measured_jobs(),
                     .total_jobs = metrics.total_jobs(),
                     .sim_end_time = t};
  fill_percentiles(metrics, result);
  return result;
}

}  // namespace

TrialResult run_trial(const ExperimentConfig& config, std::uint64_t seed) {
  validate(config);
  if (config.model == UpdateModel::kUpdateOnAccess) {
    return run_update_on_access_trial(config, seed);
  }
  if (config.fault.any()) {
    return run_fault_board_trial(config, seed);
  }
  return run_board_trial(config, seed);
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  validate(config);
  const auto trials = static_cast<std::size_t>(config.trials);
  std::vector<TrialResult> outcomes(trials);

  // Each trial writes into its pre-sized slot; the workers' completion order
  // never reaches the aggregation below, so parallel runs are bit-identical
  // to serial ones.
  const auto one_trial = [&](std::size_t trial) {
    const std::uint64_t seed =
        sim::trial_seed(config.base_seed, static_cast<int>(trial));
    if (config.trace_sink_for_trial) {
      // Traced parallel runs: each trial gets its own sink object, so sinks
      // need no synchronization.
      ExperimentConfig traced = config;
      traced.trace_sink = config.trace_sink_for_trial(static_cast<int>(trial));
      outcomes[trial] = run_trial(traced, seed);
    } else {
      outcomes[trial] = run_trial(config, seed);
    }
  };

  const int jobs = std::min(runtime::resolve_jobs(config.jobs),
                            static_cast<int>(trials));
  if (jobs > 1 && !runtime::ThreadPool::on_worker_thread()) {
    runtime::ThreadPool pool(jobs);
    runtime::parallel_for_each(pool, trials, one_trial);
  } else {
    for (std::size_t trial = 0; trial < trials; ++trial) one_trial(trial);
  }

  ExperimentResult result;
  result.trial_means.reserve(trials);
  for (const TrialResult& outcome : outcomes) {
    result.across_trials.add(outcome.mean_response);
    result.trial_means.push_back(outcome.mean_response);
    result.faults.merge(outcome.faults);
  }
  return result;
}

}  // namespace stale::driver
