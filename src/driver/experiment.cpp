#include "driver/experiment.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/audit.h"
#include "check/contracts.h"
#include "core/rate_estimator.h"
#include "dispatch/jiq.h"
#include "driver/multi_dispatcher.h"
#include "driver/trial_workload.h"
#include "driver/update_on_access.h"
#include "fault/fault_injector.h"
#include "fault/hardened_policy.h"
#include "health/churn_injector.h"
#include "health/membership.h"
#include "loadinfo/continuous_view.h"
#include "loadinfo/individual_board.h"
#include "loadinfo/periodic_board.h"
#include "policy/policy_factory.h"
#include "queueing/cluster.h"
#include "queueing/load_stats.h"
#include "queueing/metrics.h"
#include "runtime/thread_pool.h"
#include "sim/rng.h"
#include "workload/arrival_spec.h"
#include "workload/bursty_process.h"
#include "workload/job_size.h"
#include "workload/rate_estimator.h"

namespace stale::driver {

std::string update_model_name(UpdateModel model) {
  switch (model) {
    case UpdateModel::kPeriodic:
      return "periodic";
    case UpdateModel::kContinuous:
      return "continuous";
    case UpdateModel::kUpdateOnAccess:
      return "update_on_access";
    case UpdateModel::kIndividual:
      return "individual";
  }
  throw std::logic_error("update_model_name: bad enum");
}

namespace {

void validate(const ExperimentConfig& config) {
  if (config.num_servers < 1) {
    throw std::invalid_argument("ExperimentConfig: num_servers must be >= 1");
  }
  if (config.lambda <= 0.0) {
    throw std::invalid_argument("ExperimentConfig: lambda must be > 0");
  }
  if (config.update_interval <= 0.0) {
    throw std::invalid_argument("ExperimentConfig: update_interval must be > 0");
  }
  if (config.warmup_jobs >= config.num_jobs) {
    throw std::invalid_argument("ExperimentConfig: warmup >= num_jobs");
  }
  if (config.trials < 1) {
    throw std::invalid_argument("ExperimentConfig: trials must be >= 1");
  }
  config.fault.validate();
  config.churn.validate();
  if (config.churn.any()) {
    if (config.fault.any()) {
      throw std::invalid_argument(
          "ExperimentConfig: churn and fault injection are mutually "
          "exclusive (the fault path hands the dispatcher ground-truth "
          "liveness; the churn path makes it earn one through the health "
          "subsystem)");
    }
    if (config.model != UpdateModel::kPeriodic &&
        config.model != UpdateModel::kIndividual) {
      throw std::invalid_argument(
          "ExperimentConfig: churn is only supported for the periodic and "
          "individual board models (the health subsystem watches per-server "
          "report recency, which the other models do not produce)");
    }
  }
  if (config.dispatchers < 1) {
    throw std::invalid_argument("ExperimentConfig: dispatchers must be >= 1");
  }
  if (config.jiq_token_budget < 0) {
    throw std::invalid_argument(
        "ExperimentConfig: jiq_token_budget must be >= 0");
  }
  if (uses_multi_dispatcher(config)) {
    if (config.model != UpdateModel::kPeriodic &&
        config.model != UpdateModel::kIndividual) {
      throw std::invalid_argument(
          "ExperimentConfig: multi-dispatcher runs (dispatchers > 1 or a JIQ "
          "policy) support only the periodic and individual board models "
          "(each dispatcher owns a board instance; the continuous and "
          "update_on_access models have none to replicate)");
    }
    if (config.fault.any()) {
      throw std::invalid_argument(
          "ExperimentConfig: multi-dispatcher runs are incompatible with "
          "fault injection (use --churn-spec: the health subsystem gives "
          "each dispatcher its own earned liveness view)");
    }
  }
  if (config.replay == nullptr) {
    workload::validate_arrival_spec(config.arrival_spec);
  }
  if (config.model == UpdateModel::kUpdateOnAccess &&
      (config.replay != nullptr || config.arrival_spec != "poisson")) {
    throw std::invalid_argument(
        "ExperimentConfig: the update_on_access model owns its own client "
        "arrival processes (--bursty); --arrival-spec and replay apply to "
        "the board models only");
  }
  if (config.fault.any() && config.model == UpdateModel::kUpdateOnAccess) {
    throw std::invalid_argument(
        "ExperimentConfig: fault injection is not supported for the "
        "update_on_access model (per-client snapshot pulls have no refresh "
        "stream to degrade)");
  }
  if (config.board_repr == policy::BoardRepr::kBucketed) {
    if (config.fault.any()) {
      throw std::invalid_argument(
          "ExperimentConfig: board_repr=bucketed is incompatible with fault "
          "injection (per-server liveness reshaping needs the vector path)");
    }
    if (config.model == UpdateModel::kUpdateOnAccess) {
      throw std::invalid_argument(
          "ExperimentConfig: board_repr=bucketed is not supported for the "
          "update_on_access model (per-client snapshots have no shared "
          "board to bucket)");
    }
  }
}

// Builds the online rate estimator named by config.rate_estimator, or null
// for "told" (the fixed believed_total_rate is used instead).
core::RateEstimatorPtr make_rate_estimator(const ExperimentConfig& config) {
  const std::string& spec = config.rate_estimator;
  // "fixed" is the live dispatcher's name for the same ablation: the policy
  // believes the configured rate forever, however the traffic moves.
  if (spec == "told" || spec == "fixed") return nullptr;
  const double max_throughput = static_cast<double>(config.num_servers);
  if (spec == "conservative") {
    return std::make_unique<core::ConservativeRateEstimator>(max_throughput);
  }
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  if (kind == "cema") {
    // cema[:ALPHA[:BUCKET]] — defaults: alpha 0.1, bucket T/2 (two samples
    // per staleness phase, so lambda-hat re-converges within a few phases of
    // a rate shift), initial estimate the conservative max throughput.
    double alpha = 0.1;
    double bucket = config.update_interval / 2.0;
    if (colon != std::string::npos) {
      const std::string rest = spec.substr(colon + 1);
      const auto second = rest.find(':');
      alpha = std::stod(rest.substr(0, second));
      if (second != std::string::npos) {
        bucket = std::stod(rest.substr(second + 1));
      }
    }
    return std::make_unique<workload::CemaRateEstimator>(alpha, bucket,
                                                         max_throughput);
  }
  const double param =
      colon == std::string::npos ? 0.0 : std::stod(spec.substr(colon + 1));
  if (kind == "ewma") {
    return std::make_unique<core::EwmaRateEstimator>(param, max_throughput);
  }
  if (kind == "windowed") {
    return std::make_unique<core::WindowedRateEstimator>(param,
                                                         max_throughput);
  }
  throw std::invalid_argument("ExperimentConfig: unknown rate_estimator '" +
                              spec + "'");
}


// Fills the percentile fields of `result` from retained samples, if any.
void fill_percentiles(const queueing::ResponseMetrics& metrics,
                      TrialResult& result) {
  if (metrics.samples().empty()) return;
  std::vector<double> sorted = metrics.samples();
  std::sort(sorted.begin(), sorted.end());
  result.p50_response = sim::percentile_sorted(sorted, 0.50);
  result.p90_response = sim::percentile_sorted(sorted, 0.90);
  result.p95_response = sim::percentile_sorted(sorted, 0.95);
  result.p99_response = sim::percentile_sorted(sorted, 0.99);
}

TrialResult run_board_trial(const ExperimentConfig& config,
                            std::uint64_t seed) {
  sim::Rng rng(seed);
  const bool continuous = config.model == UpdateModel::kContinuous;
  const double history_window =
      continuous ? loadinfo::ContinuousView::history_window_for(
                       config.delay_kind, config.update_interval)
                 : 0.0;
  queueing::Cluster cluster(config.num_servers, history_window);
  queueing::ResponseMetrics metrics(config.warmup_jobs,
                                    config.keep_response_samples);
  const auto policy = policy::make_policy(config.policy);
  TrialWorkload workload = make_trial_workload(config);
  const auto estimator = make_rate_estimator(config);
  const double believed_rate = config.believed_total_rate();

  loadinfo::PeriodicBoard board(config.num_servers, config.update_interval);
  sim::Rng offsets_rng = rng.split();
  loadinfo::IndividualBoard individual(config.num_servers,
                                       config.update_interval, offsets_rng);
  loadinfo::ContinuousView view(config.delay_kind, config.update_interval,
                                config.know_actual_age);
  queueing::LoadImbalanceStats imbalance;

  // Bucketed representation: the active board maintains a level index next
  // to its snapshot, the policies dispatch through O(#levels) kernels, and
  // (outside the continuous model, which needs load history) the cluster
  // advances lazily via its departure heap instead of O(n) sweeps.
  const bool bucketed = config.resolved_bucketed();
  if (bucketed) {
    switch (config.model) {
      case UpdateModel::kPeriodic:
        board.enable_level_index();
        break;
      case UpdateModel::kIndividual:
        individual.enable_level_index();
        break;
      case UpdateModel::kContinuous:
        view.enable_level_index();
        break;
      case UpdateModel::kUpdateOnAccess:
        throw std::logic_error("run_board_trial: wrong model");
    }
    if (!continuous) cluster.enable_lazy_advance();
  }

  obs::TraceSink* const trace = config.trace_sink;
  cluster.set_trace_sink(trace);
  board.set_trace_sink(trace);
  individual.set_trace_sink(trace);
  view.set_trace_sink(trace);

  double t = 0.0;
  for (std::uint64_t job = 0; job < config.num_jobs; ++job) {
    t += workload.arrivals->next_gap(rng);

    policy::DispatchContext context;
    if (estimator) {
      estimator->on_arrival(t);
      context.lambda_total = estimator->rate();
    } else {
      context.lambda_total = believed_rate;
    }
    switch (config.model) {
      case UpdateModel::kPeriodic:
        board.sync(cluster, t);
        context.loads = board.loads();
        context.age = board.age(t);
        context.phase_length = board.phase_length();
        context.phase_elapsed = context.age;
        context.info_version = board.version();
        if (bucketed) context.levels = &board.level_index();
        break;
      case UpdateModel::kIndividual:
        individual.sync(cluster, t);
        context.loads = individual.loads();
        context.age = individual.mean_age(t);
        context.info_version = individual.version();
        if (bucketed) context.levels = &individual.level_index();
        break;
      case UpdateModel::kContinuous:
        cluster.advance_to(t);
        view.observe(cluster, t, rng);
        context.loads = view.loads();
        context.age = view.reported_age();
        context.info_version = view.version();
        if (bucketed) context.levels = &view.level_index();
        break;
      case UpdateModel::kUpdateOnAccess:
        throw std::logic_error("run_board_trial: wrong model");
    }
    context.trace = trace;

    const int server = policy->select(context, rng);
    if (trace) trace->on_decision(t, server, context.age);
    const double size = workload.sizes->sample(rng);
    // Snapshot the true pre-dispatch queue lengths (arrival epochs give
    // unbiased time averages) once the warmup has passed. The histogram
    // overload computes the same statistics in O(#levels) from the same
    // state (bit-identical — both reduce over exact integer sums).
    cluster.advance_to(t);
    if (job >= config.warmup_jobs) {
      if (bucketed) {
        imbalance.observe(cluster.level_histogram());
      } else {
        imbalance.observe(cluster.loads());
      }
    }
    const double departure = cluster.assign(t, server, size);
    metrics.record(departure - t);
  }

  TrialResult result{
      .mean_response = metrics.mean_response(),
      .measured_jobs = metrics.measured_jobs(),
      .total_jobs = metrics.total_jobs(),
      .sim_end_time = t,
      .mean_queue_stddev = imbalance.mean_within_snapshot_stddev(),
      .mean_queue_max = imbalance.mean_snapshot_max(),
      .mean_queue_length = imbalance.mean_queue_length()};
  result.trace_wraps = workload.wraps();
  fill_percentiles(metrics, result);
  return result;
}

// Fault-injected variant of run_board_trial. Structurally the same arrival
// loop, with four differences: (1) crash/recovery transitions interleave with
// board refreshes in global time order; (2) jobs are tagged and responses
// recorded at *completion* (a crash invalidates the departure precomputed at
// dispatch), with warmup applied by arrival index so the discarded set
// matches the serial methodology; (3) dispatch to a down server takes the
// bounded retry-with-backoff path, the backoff charged as a response-time
// penalty; (4) the policy sees the dispatcher-known liveness mask and its
// sanitize-event counter via the context.
TrialResult run_fault_board_trial(const ExperimentConfig& config,
                                  std::uint64_t seed) {
  sim::Rng rng(seed);
  const fault::FaultSpec& spec = config.fault;
  const auto n = static_cast<std::size_t>(config.num_servers);
  const bool continuous = config.model == UpdateModel::kContinuous;
  // Widen the continuous model's history window so fault-stretched delays
  // still resolve exact past-load queries (same 40-mean-delays quantile
  // rationale as ContinuousView::history_window_for).
  const double extra_allowance =
      continuous ? 40.0 * spec.update_extra_delay : 0.0;
  const double history_window =
      continuous ? loadinfo::ContinuousView::history_window_for(
                       config.delay_kind, config.update_interval) +
                       extra_allowance
                 : 0.0;
  queueing::Cluster cluster(config.num_servers, history_window);
  cluster.enable_job_tracking();
  queueing::ResponseMetrics metrics(config.warmup_jobs,
                                    config.keep_response_samples);
  policy::PolicyPtr policy = policy::make_policy(config.policy);
  TrialWorkload workload = make_trial_workload(config);
  const auto estimator = make_rate_estimator(config);
  const double believed_rate = config.believed_total_rate();

  loadinfo::PeriodicBoard board(config.num_servers, config.update_interval);
  sim::Rng offsets_rng = rng.split();
  loadinfo::IndividualBoard individual(config.num_servers,
                                       config.update_interval, offsets_rng);
  loadinfo::ContinuousView view(config.delay_kind, config.update_interval,
                                config.know_actual_age, extra_allowance);
  queueing::LoadImbalanceStats imbalance;

  obs::TraceSink* const trace = config.trace_sink;
  cluster.set_trace_sink(trace);
  board.set_trace_sink(trace);
  individual.set_trace_sink(trace);
  view.set_trace_sink(trace);

  fault::FaultInjector injector(spec, config.num_servers, rng);
  fault::FaultStats& stats = injector.stats();
  policy = fault::harden_policy(std::move(policy), spec,
                                config.update_interval, &stats);

  // Retry-backoff penalties by arrival index (tags are arrival indices, so
  // the penalty survives requeues and attaches to the final completion).
  std::vector<double> penalty(config.num_jobs, 0.0);
  std::vector<queueing::CompletedJob> done;

  const fault::FaultInjector::RequeueFn requeue =
      [&](double when, const queueing::DisplacedJob& job) -> bool {
    if (injector.alive_count() == 0) return false;
    const int target = policy::pick_uniform_alive(injector.alive(), n, rng);
    cluster.assign_tagged(when, target, job.size, job.tag, job.born);
    return true;
  };

  const auto sync_boards_to = [&](double when) {
    switch (config.model) {
      case UpdateModel::kPeriodic:
        board.sync(cluster, when, &injector);
        break;
      case UpdateModel::kIndividual:
        individual.sync(cluster, when, &injector);
        break;
      default:
        break;  // continuous: the view is materialized per request
    }
  };

  const auto record_completions = [&] {
    done.clear();
    cluster.drain_completions(done);
    for (const queueing::CompletedJob& job : done) {
      metrics.record_indexed(job.tag, job.response + penalty[job.tag]);
    }
  };

  double t = 0.0;
  for (std::uint64_t job = 0; job < config.num_jobs; ++job) {
    t += workload.arrivals->next_gap(rng);

    // Crash/recovery transitions and board refreshes interleave in global
    // time order: a board boundary before a crash must measure the
    // pre-crash cluster (at a tie the measurement wins — the last report
    // escapes just before the server dies).
    while (injector.next_transition_time() <= t) {
      const double when = injector.next_transition_time();
      sync_boards_to(when);
      injector.advance_to(cluster, when, requeue);
    }
    sync_boards_to(t);

    policy::DispatchContext context;
    if (estimator) {
      if (!injector.estimator_drop()) {
        estimator->on_arrival(t);
      } else if (trace) {
        trace->on_refresh_fault(t, obs::FaultTraceEvent::kEstimatorDrop, -1);
      }
      context.lambda_total = estimator->rate();
    } else {
      context.lambda_total = believed_rate;
    }
    switch (config.model) {
      case UpdateModel::kPeriodic:
        context.loads = board.loads();
        context.age = board.age(t);
        context.phase_length = board.phase_length();
        context.phase_elapsed = context.age;
        context.info_version = board.version();
        break;
      case UpdateModel::kIndividual:
        context.loads = individual.loads();
        context.age = individual.mean_age(t);
        context.info_version = individual.version();
        break;
      case UpdateModel::kContinuous:
        cluster.advance_to(t);
        view.observe(cluster, t, rng, &injector);
        context.loads = view.loads();
        context.age = view.reported_age();
        context.info_version = view.version();
        break;
      case UpdateModel::kUpdateOnAccess:
        throw std::logic_error("run_fault_board_trial: wrong model");
    }
    // Liveness changes must invalidate cached probability vectors even when
    // the board snapshot itself did not change.
    context.info_version ^= injector.transition_count() << 32;
    context.alive = injector.alive();
    context.sanitize_events = &stats.sanitizer_fixes;
    context.trace = trace;

    int server = policy->select(context, rng);
    if (trace) trace->on_decision(t, server, context.age);
    // The dispatcher discovers a down server on contact: bounded retry with
    // exponential backoff, each re-pick uniform over known-alive servers.
    double backoff_penalty = 0.0;
    bool dispatched = true;
    for (int attempt = 0; !cluster.up(server); ++attempt) {
      if (attempt >= spec.max_retries) {
        dispatched = false;
        break;
      }
      ++stats.dispatch_retries;
      backoff_penalty += spec.retry_backoff * std::ldexp(1.0, attempt);
      server = policy::pick_uniform_alive(injector.alive(), n, rng);
    }
    cluster.advance_to(t);
    if (job >= config.warmup_jobs) imbalance.observe(cluster.loads());
    if (dispatched) {
      const double size = workload.sizes->sample(rng);
      cluster.assign_tagged(t, server, size, job, t);
      penalty[job] = backoff_penalty;
    } else {
      ++stats.jobs_dropped;
    }
    record_completions();
  }

  // Freeze the fault processes and let every in-flight job finish so its
  // response is recorded (requeued jobs may complete long after arrival).
  cluster.advance_to(cluster.latest_pending_departure());
  record_completions();

  TrialResult result{
      .mean_response = metrics.mean_response(),
      .measured_jobs = metrics.measured_jobs(),
      .total_jobs = metrics.total_jobs(),
      .sim_end_time = t,
      .mean_queue_stddev = imbalance.mean_within_snapshot_stddev(),
      .mean_queue_max = imbalance.mean_snapshot_max(),
      .mean_queue_length = imbalance.mean_queue_length()};
  result.faults = stats;
  result.trace_wraps = workload.wraps();
  fill_percentiles(metrics, result);
  return result;
}

// Churn variant of the board trial (src/health/): the ground truth (rolling
// restarts, Poisson leave/rejoin, slow nodes) comes from a ChurnInjector,
// but — unlike the fault path, which hands the dispatcher the injector's
// live-ness mask — the dispatcher here earns its view through a Membership
// state machine fed only by what it can observe: board report recency and
// its own dispatch failures. Quarantined (suspect/dead) servers leave the
// candidate set; under the bucketed representation they are retired from
// the level index so the counted kernels renormalize over survivors; when
// candidate coverage drops below the configured threshold the dispatcher
// degrades to the fallback policy until coverage recovers.
TrialResult run_churn_board_trial(const ExperimentConfig& config,
                                  std::uint64_t seed) {
  sim::Rng rng(seed);
  const health::ChurnSpec& spec = config.churn;
  const auto n = static_cast<std::size_t>(config.num_servers);

  // Slow nodes: the last `slow` servers run at slow_factor of the base rate.
  std::vector<double> rates(n, 1.0);
  const int slow = std::min(spec.slow, config.num_servers);
  for (int s = config.num_servers - slow; s < config.num_servers; ++s) {
    rates[static_cast<std::size_t>(s)] = spec.slow_factor;
  }
  queueing::Cluster cluster(std::move(rates), 0.0);
  cluster.enable_job_tracking();
  queueing::ResponseMetrics metrics(config.warmup_jobs,
                                    config.keep_response_samples);
  policy::PolicyPtr policy = policy::make_policy(config.policy);
  policy::PolicyPtr fallback = policy::make_policy(spec.fallback_policy);
  TrialWorkload workload = make_trial_workload(config);
  const auto estimator = make_rate_estimator(config);
  const double believed_rate = config.believed_total_rate();

  loadinfo::PeriodicBoard board(config.num_servers, config.update_interval);
  sim::Rng offsets_rng = rng.split();
  loadinfo::IndividualBoard individual(config.num_servers,
                                       config.update_interval, offsets_rng);
  const bool use_individual = config.model == UpdateModel::kIndividual;
  const bool bucketed = config.resolved_bucketed();
  if (bucketed) {
    if (use_individual) {
      individual.enable_level_index();
    } else {
      board.enable_level_index();
    }
  }

  obs::TraceSink* const trace = config.trace_sink;
  cluster.set_trace_sink(trace);
  board.set_trace_sink(trace);
  individual.set_trace_sink(trace);

  health::ChurnInjector injector(spec, config.num_servers, rng);
  fault::FaultStats& stats = injector.stats();
  health::Membership membership(
      config.num_servers, spec.resolved_health(config.update_interval), 0.0,
      trace);

  std::vector<double> penalty(config.num_jobs, 0.0);
  std::vector<queueing::CompletedJob> done;

  // Requeue targets come from the membership's candidate view, not ground
  // truth: a requeue that lands on another dead server is re-displaced by
  // that server's own down transition (same instant, later in the scan).
  const health::ChurnInjector::RequeueFn requeue =
      [&](double when, const queueing::DisplacedJob& job) -> bool {
    if (injector.up_count() == 0) return false;
    const int target =
        policy::pick_uniform_alive(injector.up(), n, rng);
    cluster.assign_tagged(when, target, job.size, job.tag, job.born);
    return true;
  };

  const auto board_version = [&] {
    return use_individual ? individual.version() : board.version();
  };

  // After each batch of publishes, feed the membership what the reports say:
  // every server that was actually up delivered its entry; dead servers'
  // entries went silent (their board values are stale or vacuous, and the
  // quarantine keeps policies from acting on them). Dead-but-probed servers
  // consume their probe budget here too, on the same deterministic schedule.
  const auto note_reports = [&](double when) {
    const std::span<const std::uint8_t> up = injector.up();
    for (std::size_t i = 0; i < n; ++i) {
      if (up[i] != 0) {
        membership.note_report(static_cast<int>(i), when);
      } else if (membership.probe_due(static_cast<int>(i), when)) {
        membership.note_probe(static_cast<int>(i), when);
      }
    }
  };

  const auto sync_boards_to = [&](double when) {
    const std::uint64_t before = board_version();
    if (use_individual) {
      individual.sync(cluster, when);
    } else {
      board.sync(cluster, when);
    }
    if (board_version() != before) note_reports(when);
  };

  // Reconciles the level index with the candidate mask after membership
  // transitions: quarantined servers are retired (their level counts leave
  // the histogram), returners are readmitted at their last known level.
  std::uint64_t reconciled_at = 0;
  const auto reconcile_levels = [&](double when) {
    membership.advance(when);
    if (!bucketed || membership.transition_count() == reconciled_at) return;
    reconciled_at = membership.transition_count();
    sim::LevelIndex& index = use_individual ? individual.level_index_mut()
                                            : board.level_index_mut();
    const std::span<const std::uint8_t> candidates = membership.candidates();
    for (std::size_t i = 0; i < n; ++i) {
      const bool candidate = candidates[i] != 0;
      if (!candidate && !index.retired(static_cast<int>(i))) {
        index.retire(static_cast<int>(i));
      } else if (candidate && index.retired(static_cast<int>(i))) {
        index.readmit(static_cast<int>(i));
      }
    }
  };

  const auto record_completions = [&] {
    done.clear();
    cluster.drain_completions(done);
    for (const queueing::CompletedJob& job : done) {
      metrics.record_indexed(job.tag, job.response + penalty[job.tag]);
    }
  };

  queueing::LoadImbalanceStats imbalance;
  double t = 0.0;
  for (std::uint64_t job = 0; job < config.num_jobs; ++job) {
    t += workload.arrivals->next_gap(rng);

    // Ground-truth transitions and board refreshes interleave in global time
    // order (a publish boundary before a departure must measure the
    // pre-departure cluster).
    while (injector.next_transition_time() <= t) {
      const double when = injector.next_transition_time();
      sync_boards_to(when);
      injector.advance_to(cluster, when, requeue);
    }
    sync_boards_to(t);
    reconcile_levels(t);

    policy::DispatchContext context;
    if (estimator) {
      estimator->on_arrival(t);
      context.lambda_total = estimator->rate();
    } else {
      context.lambda_total = believed_rate;
    }
    if (use_individual) {
      context.loads = individual.loads();
      context.age = individual.mean_age(t);
      context.info_version = individual.version();
      if (bucketed) context.levels = &individual.level_index();
    } else {
      context.loads = board.loads();
      context.age = board.age(t);
      context.phase_length = board.phase_length();
      context.phase_elapsed = context.age;
      context.info_version = board.version();
      if (bucketed) context.levels = &board.level_index();
    }
    // Membership transitions must invalidate cached probability vectors even
    // when the board snapshot itself did not change.
    context.info_version ^= membership.transition_count() << 32;
    context.alive = membership.candidates();
    context.levels_exclude_quarantined = bucketed;
    context.sanitize_events = &stats.sanitizer_fixes;
    context.trace = trace;

    // Degraded mode: below the coverage threshold the board's picture is too
    // thin to act on — fall back to the configured information-free policy
    // until enough members return. With zero candidates no policy has
    // anything to say (the bucketed histogram is empty); the job goes
    // uniform-over-everyone and takes its chances with the retry path.
    int server;
    if (membership.candidate_count() == 0) {
      server = policy::pick_uniform_alive(membership.candidates(), n, rng);
    } else {
      policy::SelectionPolicy& active =
          membership.degraded() ? *fallback : *policy;
      server = active.select(context, rng);
    }
    if (trace) trace->on_decision(t, server, context.age);
    // The dispatcher discovers a down server on contact: the failure feeds
    // the membership (straight to dead, probe schedule armed), and the job
    // takes the bounded retry-with-backoff path over the candidate set.
    double backoff_penalty = 0.0;
    bool dispatched = true;
    for (int attempt = 0; !cluster.up(server); ++attempt) {
      membership.note_failure(server, t);
      if (attempt >= spec.max_retries) {
        dispatched = false;
        break;
      }
      ++stats.dispatch_retries;
      backoff_penalty += spec.retry_backoff * std::ldexp(1.0, attempt);
      server = policy::pick_uniform_alive(membership.candidates(), n, rng);
      STALE_AUDIT(check::audit_candidate_pick(
          server, membership.candidates(),
          "run_churn_board_trial: retry pick"));
    }
    cluster.advance_to(t);
    if (job >= config.warmup_jobs) imbalance.observe(cluster.loads());
    if (dispatched) {
      const double size = workload.sizes->sample(rng);
      cluster.assign_tagged(t, server, size, job, t);
      penalty[job] = backoff_penalty;
    } else {
      ++stats.jobs_dropped;
    }
    record_completions();
  }

  // Freeze the churn processes and let every in-flight job finish so its
  // response is recorded.
  cluster.advance_to(cluster.latest_pending_departure());
  record_completions();

  TrialResult result{
      .mean_response = metrics.mean_response(),
      .measured_jobs = metrics.measured_jobs(),
      .total_jobs = metrics.total_jobs(),
      .sim_end_time = t,
      .mean_queue_stddev = imbalance.mean_within_snapshot_stddev(),
      .mean_queue_max = imbalance.mean_snapshot_max(),
      .mean_queue_length = imbalance.mean_queue_length()};
  result.faults = stats;
  result.trace_wraps = workload.wraps();
  fill_percentiles(metrics, result);
  return result;
}

TrialResult run_update_on_access_trial(const ExperimentConfig& config,
                                       std::uint64_t seed) {
  sim::Rng rng(seed);
  queueing::Cluster cluster(config.num_servers, 0.0);
  const auto policy = policy::make_policy(config.policy);
  const auto job_size = workload::make_job_size(config.job_size);
  const double arrival_rate = config.total_rate();

  // Client population sized so the mean per-client gap is the target T; the
  // gap is then chosen so the aggregate rate is exactly lambda * n despite
  // the rounding of the client count.
  const int clients = std::max(
      1, static_cast<int>(std::llround(arrival_rate * config.update_interval)));
  const double per_client_gap = static_cast<double>(clients) / arrival_rate;

  workload::ArrivalProcessPtr gaps;
  if (config.bursty) {
    gaps = std::make_unique<workload::BurstyProcess>(
        per_client_gap, config.burst_mean_length,
        config.burst_within_gap_fraction * per_client_gap);
  } else {
    gaps = std::make_unique<workload::PoissonProcess>(1.0 / per_client_gap);
  }

  // Extend the run so every client launches at least min_jobs_per_client
  // jobs, scaling the warmup share proportionally (paper Section 5.3).
  std::uint64_t num_jobs = config.num_jobs;
  std::uint64_t warmup = config.warmup_jobs;
  if (config.min_jobs_per_client > 0) {
    const std::uint64_t needed =
        config.min_jobs_per_client * static_cast<std::uint64_t>(clients);
    if (needed > num_jobs) {
      warmup = needed * warmup / num_jobs;
      num_jobs = needed;
    }
  }

  queueing::ResponseMetrics metrics(warmup, config.keep_response_samples);
  UpdateOnAccessEngine engine(cluster, *policy, *gaps, *job_size,
                              config.believed_total_rate(), clients, rng);
  engine.set_trace_sink(config.trace_sink);
  double t = 0.0;
  for (std::uint64_t job = 0; job < num_jobs; ++job) {
    t = engine.step(metrics);
  }
  TrialResult result{.mean_response = metrics.mean_response(),
                     .measured_jobs = metrics.measured_jobs(),
                     .total_jobs = metrics.total_jobs(),
                     .sim_end_time = t};
  fill_percentiles(metrics, result);
  return result;
}

}  // namespace

TrialResult run_trial(const ExperimentConfig& config, std::uint64_t seed) {
  validate(config);
  if (config.model == UpdateModel::kUpdateOnAccess) {
    return run_update_on_access_trial(config, seed);
  }
  // D > 1 (or JIQ, whose token state lives in the multi engine even at
  // D = 1) routes to the multi-dispatcher engine; a plain one-dispatcher
  // config keeps the legacy engines below, so existing runs stay
  // byte-identical by construction.
  if (uses_multi_dispatcher(config)) {
    return run_multi_dispatcher_trial(config, seed);
  }
  if (config.churn.any()) {
    return run_churn_board_trial(config, seed);
  }
  if (config.fault.any()) {
    return run_fault_board_trial(config, seed);
  }
  return run_board_trial(config, seed);
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  validate(config);
  const auto trials = static_cast<std::size_t>(config.trials);
  std::vector<TrialResult> outcomes(trials);

  // Each trial writes into its pre-sized slot; the workers' completion order
  // never reaches the aggregation below, so parallel runs are bit-identical
  // to serial ones.
  const auto one_trial = [&](std::size_t trial) {
    const std::uint64_t seed =
        sim::trial_seed(config.base_seed, static_cast<int>(trial));
    if (config.trace_sink_for_trial) {
      // Traced parallel runs: each trial gets its own sink object, so sinks
      // need no synchronization.
      ExperimentConfig traced = config;
      traced.trace_sink = config.trace_sink_for_trial(static_cast<int>(trial));
      outcomes[trial] = run_trial(traced, seed);
    } else {
      outcomes[trial] = run_trial(config, seed);
    }
  };

  const int jobs = std::min(runtime::resolve_jobs(config.jobs),
                            static_cast<int>(trials));
  if (jobs > 1 && !runtime::ThreadPool::on_worker_thread()) {
    runtime::ThreadPool pool(jobs);
    runtime::parallel_for_each(pool, trials, one_trial);
  } else {
    for (std::size_t trial = 0; trial < trials; ++trial) one_trial(trial);
  }

  ExperimentResult result;
  result.trial_means.reserve(trials);
  for (const TrialResult& outcome : outcomes) {
    result.across_trials.add(outcome.mean_response);
    result.trial_means.push_back(outcome.mean_response);
    result.faults.merge(outcome.faults);
    result.trace_wraps = std::max(result.trace_wraps, outcome.trace_wraps);
  }
  return result;
}

}  // namespace stale::driver
