// Per-trial workload construction: resolves an ExperimentConfig's
// arrival_spec / job_size / replay fields into the cursor-holding process
// objects one trial consumes. Each trial builds its own TrialWorkload (the
// processes keep internal state — cursors, MMPP phase, thinning clocks — so
// sharing one across parallel trials would race and leak position).
#pragma once

#include <string>

#include "driver/experiment.h"
#include "sim/distributions.h"
#include "workload/arrival_process.h"

namespace stale::driver {

struct TrialWorkload {
  workload::ArrivalProcessPtr arrivals;
  sim::DistributionPtr sizes;

  // Times the finite trace looped (0 for synthetic workloads).
  std::uint64_t wraps() const { return arrivals->wraps(); }
};

// Builds the trial's arrival process and job-size distribution. Replay
// configs get a ReplayProcess + TraceSizes pair over the recorded trace;
// everything else routes through make_arrival_process(arrival_spec,
// total_rate()) and make_job_size(job_size). The default spec ("poisson")
// reproduces the historical inline exponential draw bit for bit.
TrialWorkload make_trial_workload(const ExperimentConfig& config);

// Points `config` at the recorded trace-v2 directory `dir` and rewrites the
// run-shape fields to match the recording: num_servers and update_interval
// from the manifest, num_jobs = recorded arrivals (so the replay ends exactly
// at the trace, no wrap), warmup = num_jobs / 4 (the live recorder's
// convention), trials = 1 (there is one recording; seeds only perturb
// service-order tie-breaks), lambda = empirical rate / num_servers, and the
// individual board model (live periodic reporting is per-backend timers —
// de-phased, not phase-locked). Throws on an unloadable trace or a
// recording too short to measure.
void configure_replay(ExperimentConfig& config, const std::string& dir);

}  // namespace stale::driver
