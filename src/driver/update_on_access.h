// Update-on-access client engine (paper Sections 3.2, 5.3-5.4).
//
// Explicitly modeled clients issue requests; when a request is dispatched,
// the reply carries a snapshot of all servers' current queue lengths, and the
// client uses that snapshot to place its *next* request. The mean information
// age therefore equals the per-client inter-request time. The number of
// clients is chosen so the aggregate arrival rate is lambda * n:
//     clients = max(1, round(lambda * n * T)),
// and the per-client mean gap is clients / (lambda * n), so the aggregate
// rate is exact even after rounding.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "policy/policy.h"
#include "queueing/cluster.h"
#include "queueing/metrics.h"
#include "sim/distributions.h"
#include "sim/rng.h"
#include "workload/arrival_process.h"

namespace stale::driver {

class UpdateOnAccessEngine {
 public:
  // `gaps` generates per-client inter-request gaps (Poisson for Figure 8,
  // bursty for Figure 9); its mean_gap() must equal clients / (lambda * n).
  UpdateOnAccessEngine(queueing::Cluster& cluster,
                       policy::SelectionPolicy& policy,
                       workload::ArrivalProcess& gaps,
                       const sim::Distribution& job_size,
                       double believed_total_rate, int num_clients,
                       sim::Rng& rng);

  // Dispatches exactly one request (the globally next client to fire) and
  // records its response time into `metrics`. Returns the dispatch time.
  double step(queueing::ResponseMetrics& metrics);

  int num_clients() const { return static_cast<int>(clients_.size()); }

  // Attaches `sink` to the cluster's servers and to the dispatch decisions
  // (on_decision with the snapshot age each request acted on). Pure
  // observer; nullptr detaches.
  void set_trace_sink(obs::TraceSink* sink) {
    trace_ = sink;
    cluster_.set_trace_sink(sink);
  }

 private:
  struct Client {
    std::vector<int> snapshot;  // loads seen by the previous reply
    double snapshot_time = 0.0;
  };

  struct Pending {
    double when;
    int client;
    bool operator>(const Pending& other) const {
      if (when != other.when) return when > other.when;
      return client > other.client;
    }
  };

  queueing::Cluster& cluster_;
  policy::SelectionPolicy& policy_;
  workload::ArrivalProcess& gaps_;
  const sim::Distribution& job_size_;
  double believed_total_rate_;
  sim::Rng& rng_;
  std::vector<Client> clients_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> next_;
  std::uint64_t version_ = 0;
  obs::TraceSink* trace_ = nullptr;
};

}  // namespace stale::driver
