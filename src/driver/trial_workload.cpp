#include "driver/trial_workload.h"

#include <memory>
#include <stdexcept>

#include "workload/arrival_spec.h"
#include "workload/job_size.h"
#include "workload/replay.h"
#include "workload/trace.h"

namespace stale::driver {

TrialWorkload make_trial_workload(const ExperimentConfig& config) {
  TrialWorkload workload;
  if (config.replay != nullptr) {
    workload.arrivals =
        std::make_unique<stale::workload::ReplayProcess>(
            config.replay->arrivals);
    workload.sizes = std::make_unique<stale::workload::TraceSizes>(
        config.replay->arrivals);
    return workload;
  }
  workload.arrivals = stale::workload::make_arrival_process(
      config.arrival_spec, config.total_rate());
  workload.sizes = stale::workload::make_job_size(config.job_size);
  return workload;
}

void configure_replay(ExperimentConfig& config, const std::string& dir) {
  auto trace = std::make_shared<stale::workload::ReplayTrace>(
      stale::workload::load_replay_trace(dir));
  if (trace->arrivals.size() < 8) {
    throw std::invalid_argument(
        "configure_replay: trace '" + dir + "' holds only " +
        std::to_string(trace->arrivals.size()) +
        " completed jobs — too short to measure");
  }
  if (trace->manifest.schedule != "periodic") {
    throw std::invalid_argument(
        "configure_replay: only 'periodic' recordings replay (got schedule '" +
        trace->manifest.schedule + "'; the piggyback board has no "
        "standalone report stream to reconstruct)");
  }
  const double rate = trace->empirical_rate();
  if (rate <= 0.0) {
    throw std::invalid_argument(
        "configure_replay: trace '" + dir + "' spans zero time");
  }
  config.num_servers = trace->manifest.backends;
  config.update_interval = trace->manifest.update_period;
  // Live "periodic" reporting is each backend on its own timer — de-phased
  // per-server refresh, which is the simulator's individual model, not the
  // phase-locked bulletin board.
  config.model = UpdateModel::kIndividual;
  config.num_jobs = trace->arrivals.size();
  config.warmup_jobs = config.num_jobs / 4;
  config.trials = 1;
  config.lambda = rate / trace->manifest.backends;
  config.arrival_spec = "poisson";  // ignored once replay is set; keep valid
  config.replay = std::move(trace);
}

}  // namespace stale::driver
