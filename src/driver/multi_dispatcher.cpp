#include "driver/multi_dispatcher.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <vector>

#include "check/audit.h"
#include "check/contracts.h"
#include "core/rate_estimator.h"
#include "dispatch/jiq.h"
#include "health/churn_injector.h"
#include "health/membership.h"
#include "policy/policy_factory.h"
#include "queueing/cluster.h"
#include "queueing/load_stats.h"
#include "queueing/metrics.h"
#include "driver/trial_workload.h"
#include "sim/rng.h"
#include "workload/rate_estimator.h"

namespace stale::driver {

bool uses_multi_dispatcher(const ExperimentConfig& config) {
  return config.dispatchers > 1 || dispatch::is_jiq_spec(config.policy);
}

namespace {

// Builds the online rate estimator named by config.rate_estimator, or null
// for "told"/"fixed". Mirrors the legacy engine's helper (anonymous there).
core::RateEstimatorPtr make_estimator(const ExperimentConfig& config) {
  const std::string& spec = config.rate_estimator;
  if (spec == "told" || spec == "fixed") return nullptr;
  const double max_throughput = static_cast<double>(config.num_servers);
  if (spec == "conservative") {
    return std::make_unique<core::ConservativeRateEstimator>(max_throughput);
  }
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  if (kind == "cema") {
    double alpha = 0.1;
    double bucket = config.update_interval / 2.0;
    if (colon != std::string::npos) {
      const std::string rest = spec.substr(colon + 1);
      const auto second = rest.find(':');
      alpha = std::stod(rest.substr(0, second));
      if (second != std::string::npos) {
        bucket = std::stod(rest.substr(second + 1));
      }
    }
    return std::make_unique<workload::CemaRateEstimator>(alpha, bucket,
                                                         max_throughput);
  }
  const double param =
      colon == std::string::npos ? 0.0 : std::stod(spec.substr(colon + 1));
  if (kind == "ewma") {
    return std::make_unique<core::EwmaRateEstimator>(param, max_throughput);
  }
  if (kind == "windowed") {
    return std::make_unique<core::WindowedRateEstimator>(param,
                                                         max_throughput);
  }
  throw std::invalid_argument("ExperimentConfig: unknown rate_estimator '" +
                              spec + "'");
}

void fill_result_percentiles(const queueing::ResponseMetrics& metrics,
                             TrialResult& result) {
  if (metrics.samples().empty()) return;
  std::vector<double> sorted = metrics.samples();
  std::sort(sorted.begin(), sorted.end());
  result.p50_response = sim::percentile_sorted(sorted, 0.50);
  result.p90_response = sim::percentile_sorted(sorted, 0.90);
  result.p95_response = sim::percentile_sorted(sorted, 0.95);
  result.p99_response = sim::percentile_sorted(sorted, 0.99);
}

}  // namespace

// One trial of the D-dispatcher system. The draw discipline is the legacy
// single-dispatcher engine's, extended only where D > 1 or JIQ forces it:
//   * one rng.split() per dispatcher for individual-board offsets (D = 1:
//     exactly the legacy split), consumed inside DispatcherSet;
//   * per-dispatcher policy streams split off only when D > 1 (at D = 1 the
//     policy draws from the trial stream, like the legacy engine);
//   * one token stream split off only for JIQ;
//   * one churn stream split off only when churn is active (inside
//     ChurnInjector, like the legacy churn engine);
//   * the dispatcher-assignment draw happens only when D > 1.
// Everything else — arrival gaps, job sizes, retry re-picks — draws exactly
// where the legacy engines draw. That is what makes the D = 1 plain path
// bit-identical to run_board_trial (tested) and every path bit-identical
// under any --jobs N (trials never share streams).
TrialResult run_multi_dispatcher_trial(const ExperimentConfig& config,
                                       std::uint64_t seed) {
  const int D = config.dispatchers;
  const auto n = static_cast<std::size_t>(config.num_servers);
  const bool jiq = dispatch::is_jiq_spec(config.policy);
  const bool churn = config.churn.any();
  const bool use_individual = config.model == UpdateModel::kIndividual;
  const bool bucketed = config.resolved_bucketed();
  const bool tracking = jiq || churn;
  const health::ChurnSpec& cspec = config.churn;

  sim::Rng rng(seed);

  // Churn runs carry the spec's permanently slow nodes, like the legacy
  // churn engine; plain runs use the homogeneous cluster.
  std::vector<double> rates(n, 1.0);
  if (churn) {
    const int slow = std::min(cspec.slow, config.num_servers);
    for (int s = config.num_servers - slow; s < config.num_servers; ++s) {
      rates[static_cast<std::size_t>(s)] = cspec.slow_factor;
    }
  }
  queueing::Cluster cluster(std::move(rates), 0.0);
  if (tracking) cluster.enable_job_tracking();
  queueing::ResponseMetrics metrics(config.warmup_jobs,
                                    config.keep_response_samples);

  const dispatch::JiqSpec jiq_spec =
      jiq ? dispatch::parse_jiq_spec(config.policy) : dispatch::JiqSpec{};
  dispatch::TokenDirectory directory(config.num_servers, D,
                                     config.jiq_token_budget);

  // One policy instance per dispatcher: JIQ policies are per-dispatcher
  // views of the shared token directory; LI policies each keep their own
  // cached probability vectors keyed on their own board's version.
  std::vector<policy::PolicyPtr> policies;
  std::vector<policy::PolicyPtr> fallbacks;  // churn degraded mode, per d
  policies.reserve(static_cast<std::size_t>(D));
  for (int d = 0; d < D; ++d) {
    if (jiq) {
      policies.push_back(
          std::make_unique<dispatch::JiqPolicy>(&directory, d, jiq_spec));
    } else {
      policies.push_back(policy::make_policy(config.policy));
    }
    if (churn) fallbacks.push_back(policy::make_policy(cspec.fallback_policy));
  }

  TrialWorkload trial_workload = make_trial_workload(config);
  const auto estimator = make_estimator(config);
  const double believed_rate = config.believed_total_rate();

  dispatch::DispatcherSet boards(D, config.num_servers,
                                 config.update_interval, use_individual, rng);
  dispatch::ArrivalSplitter splitter(D, config.dispatcher_split);

  if (bucketed) {
    boards.enable_level_index();
    if (!churn) cluster.enable_lazy_advance();
  }

  obs::TraceSink* const trace = config.trace_sink;
  cluster.set_trace_sink(trace);
  boards.set_trace_sink(trace);

  // Per-dispatcher policy streams (D > 1 only; see the draw discipline
  // above). The vector is pre-split in dispatcher order so the streams are
  // a pure function of (seed, d).
  std::vector<sim::Rng> policy_rngs;
  if (D > 1) {
    policy_rngs.reserve(static_cast<std::size_t>(D));
    for (int d = 0; d < D; ++d) policy_rngs.push_back(rng.split());
  }
  sim::Rng token_rng;
  if (jiq) token_rng = rng.split();

  // Churn machinery: one ground-truth injector, one earned Membership view
  // PER dispatcher — each dispatcher quarantines on its own board's report
  // recency, so their candidate sets can disagree (and their level indexes
  // retire different servers).
  std::vector<health::Membership> memberships;
  std::vector<std::uint64_t> last_versions(static_cast<std::size_t>(D), 0);
  std::vector<std::uint64_t> reconciled_at(static_cast<std::size_t>(D), 0);
  // The injector splits a churn stream off `rng` at construction, so it only
  // exists when churn is on — a churn-free run must not consume the split.
  std::optional<health::ChurnInjector> injector;
  fault::FaultStats no_churn_stats;
  if (churn) injector.emplace(cspec, config.num_servers, rng);
  fault::FaultStats& stats = churn ? injector->stats() : no_churn_stats;
  if (churn) {
    memberships.reserve(static_cast<std::size_t>(D));
    for (int d = 0; d < D; ++d) {
      memberships.emplace_back(config.num_servers,
                               cspec.resolved_health(config.update_interval),
                               0.0, trace);
      last_versions[static_cast<std::size_t>(d)] = boards.version(d);
    }
  }

  // JIQ: an empty cluster starts with every server idle, so every server
  // queues its initial token (in server order — the live system's HELLO
  // handshake does the same).
  if (jiq) {
    for (int s = 0; s < config.num_servers; ++s) {
      directory.offer(s, jiq_spec, token_rng);
    }
  }

  std::vector<double> penalty;
  if (churn) penalty.assign(config.num_jobs, 0.0);
  std::vector<queueing::CompletedJob> done;

  const health::ChurnInjector::RequeueFn requeue =
      [&](double when, const queueing::DisplacedJob& job) -> bool {
    if (injector->up_count() == 0) return false;
    const int target = policy::pick_uniform_alive(injector->up(), n, rng);
    cluster.assign_tagged(when, target, job.size, job.tag, job.born);
    // The requeued job lands on the target whether or not it was idle; its
    // token (if queued anywhere) no longer means "idle".
    if (jiq) directory.invalidate(target);
    return true;
  };

  const auto note_reports = [&](int d, double when) {
    health::Membership& membership = memberships[static_cast<std::size_t>(d)];
    const std::span<const std::uint8_t> up = injector->up();
    for (std::size_t i = 0; i < n; ++i) {
      if (up[i] != 0) {
        membership.note_report(static_cast<int>(i), when);
      } else if (membership.probe_due(static_cast<int>(i), when)) {
        membership.note_probe(static_cast<int>(i), when);
      }
    }
  };

  const auto sync_boards_to = [&](double when) {
    boards.sync_all_to(cluster, when);
    if (!churn) return;
    for (int d = 0; d < D; ++d) {
      const auto i = static_cast<std::size_t>(d);
      if (boards.version(d) != last_versions[i]) {
        last_versions[i] = boards.version(d);
        note_reports(d, when);
      }
    }
  };

  // Retires every token whose server the ground truth took down or whose
  // HOLDING dispatcher quarantined it — the "tokens never dangle after
  // crash/quarantine" half of conservation (audited below).
  const auto invalidate_dead_tokens = [&] {
    if (!jiq) return;
    for (int s = 0; s < config.num_servers; ++s) {
      const int h = directory.holder(s);
      if (h < 0) continue;
      const bool down =
          churn && injector->up()[static_cast<std::size_t>(s)] == 0;
      const bool quarantined =
          churn && memberships[static_cast<std::size_t>(h)]
                           .candidates()[static_cast<std::size_t>(s)] == 0;
      if (down || quarantined) directory.invalidate(s);
    }
  };

  // Per-dispatcher reconciliation of the bucketed index with the candidate
  // mask (the legacy churn engine's reconcile_levels, once per board).
  const auto reconcile_levels = [&](int d, double when) {
    health::Membership& membership = memberships[static_cast<std::size_t>(d)];
    membership.advance(when);
    if (!bucketed ||
        membership.transition_count() ==
            reconciled_at[static_cast<std::size_t>(d)]) {
      return;
    }
    reconciled_at[static_cast<std::size_t>(d)] = membership.transition_count();
    sim::LevelIndex& index = boards.level_index_mut(d);
    const std::span<const std::uint8_t> candidates = membership.candidates();
    for (std::size_t i = 0; i < n; ++i) {
      const bool candidate = candidates[i] != 0;
      if (!candidate && !index.retired(static_cast<int>(i))) {
        index.retire(static_cast<int>(i));
      } else if (candidate && index.retired(static_cast<int>(i))) {
        index.readmit(static_cast<int>(i));
      }
    }
  };

  queueing::LoadImbalanceStats imbalance;
  double t = 0.0;
  for (std::uint64_t job = 0; job < config.num_jobs; ++job) {
    t += trial_workload.arrivals->next_gap(rng);

    if (churn) {
      // Ground-truth transitions and board refreshes interleave in global
      // time order (a publish boundary before a departure must measure the
      // pre-departure cluster).
      while (injector->next_transition_time() <= t) {
        const double when = injector->next_transition_time();
        sync_boards_to(when);
        injector->advance_to(cluster, when, requeue);
        invalidate_dead_tokens();
      }
    }
    sync_boards_to(t);
    if (churn) {
      for (int d = 0; d < D; ++d) reconcile_levels(d, t);
      invalidate_dead_tokens();
    }

    // Thin the merged Poisson stream: dispatcher d sees an independent
    // Poisson process at its share of the total rate.
    const int d = D > 1 ? splitter.pick(rng) : 0;
    const auto di = static_cast<std::size_t>(d);
    sim::Rng& policy_rng = D > 1 ? policy_rngs[di] : rng;

    if (tracking) {
      // Retire and drain completions up to t before the dispatch decision:
      // a server that went idle before this arrival must be claimable now.
      cluster.advance_to(t);
      done.clear();
      cluster.drain_completions(done);
      if (churn) {
        for (const queueing::CompletedJob& c : done) {
          metrics.record_indexed(c.tag, c.response + penalty[c.tag]);
        }
      }
      if (jiq) {
        // Idle detection: a drained server whose queue is empty at t went
        // idle at its last departure and queues a token. Offers happen in
        // (departure, server) order so the token stream is deterministic.
        std::sort(done.begin(), done.end(),
                  [](const queueing::CompletedJob& a,
                     const queueing::CompletedJob& b) {
                    if (a.departure != b.departure)
                      return a.departure < b.departure;
                    if (a.server != b.server) return a.server < b.server;
                    return a.tag < b.tag;
                  });
        for (const queueing::CompletedJob& c : done) {
          if (cluster.loads()[static_cast<std::size_t>(c.server)] != 0) {
            continue;
          }
          if (churn && !cluster.up(c.server)) continue;
          if (directory.has_token(c.server)) continue;
          directory.offer(c.server, jiq_spec, token_rng);
        }
        STALE_AUDIT(directory.audit("run_multi_dispatcher_trial: post-offer"));
      }
    }

    policy::DispatchContext context;
    if (estimator) {
      estimator->on_arrival(t);
      context.lambda_total = estimator->rate();
    } else {
      context.lambda_total = believed_rate;
    }
    context.loads = boards.loads(d);
    context.age = boards.age(d, t);
    if (!use_individual) {
      context.phase_length = config.update_interval;
      context.phase_elapsed = context.age;
    }
    context.info_version = boards.version(d);
    if (bucketed) context.levels = &boards.level_index(d);
    if (churn) {
      health::Membership& membership = memberships[di];
      // Membership transitions must invalidate cached probability vectors
      // even when the board snapshot itself did not change.
      context.info_version ^= membership.transition_count() << 32;
      context.alive = membership.candidates();
      context.levels_exclude_quarantined = bucketed;
      context.sanitize_events = &stats.sanitizer_fixes;
    }
    context.trace = trace;

    int server;
    if (churn && memberships[di].candidate_count() == 0) {
      server =
          policy::pick_uniform_alive(memberships[di].candidates(), n,
                                     policy_rng);
    } else if (churn && memberships[di].degraded()) {
      server = fallbacks[di]->select(context, policy_rng);
    } else {
      server = policies[di]->select(context, policy_rng);
    }
    if (trace) trace->on_decision(t, server, context.age);

    double backoff_penalty = 0.0;
    bool dispatched = true;
    if (churn) {
      // Down server discovered on contact: the failure feeds dispatcher d's
      // membership, and the job takes the bounded retry path over d's
      // candidate set.
      for (int attempt = 0; !cluster.up(server); ++attempt) {
        memberships[di].note_failure(server, t);
        if (attempt >= cspec.max_retries) {
          dispatched = false;
          break;
        }
        ++stats.dispatch_retries;
        backoff_penalty += cspec.retry_backoff * std::ldexp(1.0, attempt);
        server = policy::pick_uniform_alive(memberships[di].candidates(), n,
                                            policy_rng);
        STALE_AUDIT(check::audit_candidate_pick(
            server, memberships[di].candidates(),
            "run_multi_dispatcher_trial: retry pick"));
      }
    }

    cluster.advance_to(t);
    if (job >= config.warmup_jobs) {
      if (bucketed && !churn) {
        imbalance.observe(cluster.level_histogram());
      } else {
        imbalance.observe(cluster.loads());
      }
    }
    if (dispatched) {
      const double size = trial_workload.sizes->sample(rng);
      if (tracking) {
        const double departure = cluster.assign_tagged(t, server, size, job, t);
        if (churn) {
          penalty[job] = backoff_penalty;
        } else {
          metrics.record(departure - t);
        }
      } else {
        const double departure = cluster.assign(t, server, size);
        metrics.record(departure - t);
      }
      // A dispatched job consumes the target's token wherever it is queued:
      // the server is no longer idle, so the token must not dangle.
      if (jiq) directory.invalidate(server);
    } else {
      ++stats.jobs_dropped;
    }
  }

  if (churn) {
    // Freeze the churn processes and let every in-flight job finish so its
    // response is recorded.
    cluster.advance_to(cluster.latest_pending_departure());
    done.clear();
    cluster.drain_completions(done);
    for (const queueing::CompletedJob& c : done) {
      metrics.record_indexed(c.tag, c.response + penalty[c.tag]);
    }
  }
  if (jiq) {
    STALE_AUDIT(directory.audit("run_multi_dispatcher_trial: end of trial"));
  }

  TrialResult result{
      .mean_response = metrics.mean_response(),
      .measured_jobs = metrics.measured_jobs(),
      .total_jobs = metrics.total_jobs(),
      .sim_end_time = t,
      .mean_queue_stddev = imbalance.mean_within_snapshot_stddev(),
      .mean_queue_max = imbalance.mean_snapshot_max(),
      .mean_queue_length = imbalance.mean_queue_length()};
  if (churn) result.faults = stats;
  result.trace_wraps = trial_workload.wraps();
  fill_result_percentiles(metrics, result);
  return result;
}

}  // namespace stale::driver
