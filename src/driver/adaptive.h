// Adaptive-precision experiment runner: keeps adding independent trials
// until the 90% confidence half-width shrinks below a target fraction of the
// mean (or a trial budget runs out). Useful when sweeping regimes whose
// variance differs by orders of magnitude — heavy load and heavy-tailed jobs
// need many more trials than light load — without paying the worst case
// everywhere.
#pragma once

#include "driver/experiment.h"

namespace stale::driver {

struct AdaptiveOptions {
  // Stop when ci90_half_width / mean <= relative_precision.
  double relative_precision = 0.05;
  int min_trials = 3;
  int max_trials = 50;
};

struct AdaptiveResult {
  ExperimentResult result;
  bool converged = false;  // precision target met within the budget
  int trials_used = 0;
};

// Runs config-many-trials adaptively; config.trials is ignored in favour of
// the options' bounds. Seeds follow the same trial_seed(base_seed, i)
// sequence as run_experiment, so a converged adaptive run is a prefix-
// extension of the fixed-trial run.
AdaptiveResult run_until_confident(const ExperimentConfig& config,
                                   const AdaptiveOptions& options = {});

}  // namespace stale::driver
