// Aligned-text / CSV table emitter used by every bench binary, so figure
// output is readable in a terminal and trivially machine-parseable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace stale::driver {

class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  // Adds a row; `cells` must match the column count.
  void add_row(std::vector<std::string> cells);

  // Convenience cell formatters.
  static std::string fmt(double value, int precision = 4);
  static std::string fmt_ci(double mean, double half_width,
                            int precision = 4);

  // Writes the table: aligned text (csv == false) or RFC-ish CSV.
  void print(std::ostream& os, bool csv) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stale::driver
