#include "driver/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace stale::driver {

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::fmt_ci(double mean, double half_width, int precision) {
  std::ostringstream os;
  // "+-" rather than the UTF-8 plus-minus sign keeps setw alignment exact.
  os << std::fixed << std::setprecision(precision) << mean << "+-"
     << half_width;
  return os.str();
}

void Table::print(std::ostream& os, bool csv) const {
  if (csv) {
    auto emit = [&os](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) os << ",";
        os << cells[i];
      }
      os << "\n";
    };
    emit(columns_);
    for (const auto& row : rows_) emit(row);
    return;
  }

  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << "  ";
      os << std::left << std::setw(static_cast<int>(widths[c])) << cells[c];
    }
    os << "\n";
  };
  emit(columns_);
  std::vector<std::string> rule;
  rule.reserve(columns_.size());
  for (std::size_t w : widths) rule.emplace_back(w, '-');
  emit(rule);
  for (const auto& row : rows_) emit(row);
}

}  // namespace stale::driver
