// Receiver-driven rebalancing (the paper's stated future work, following
// Eager/Lazowska/Zahorjan-style receiver-initiated policies): in addition to
// the sender-driven dispatch under study, a server that goes idle probes a
// few peers and steals a waiting job from the most backlogged one.
//
// Unlike the dispatcher, the *receiver* acts on fresh information (a probe is
// a direct exchange between two machines), so stealing repairs exactly the
// mistakes stale sender-side information causes. The interesting question —
// answered by bench/ablation_receiver_driven — is how much of LI's advantage
// survives once receivers can clean up after bad placement, and whether
// LI + stealing beats naive + stealing.
//
// Implemented on the generic event kernel (migration requires moving queued
// jobs between servers, which the lazy-departure engine's precomputed
// departure times cannot express).
#pragma once

#include <cstdint>

#include "driver/experiment.h"

namespace stale::driver {

struct StealingOptions {
  bool enabled = true;
  // Servers probed when idle; the most backlogged probed server is chosen.
  int probe_count = 3;
  // Extra latency a migrated job pays (network transfer + context); the
  // thief is occupied by the transfer.
  double migration_delay = 0.0;
  // Minimum *waiting* jobs (excluding the one in service) a victim must have.
  int min_waiting_to_steal = 1;
};

// Runs one periodic-update trial with receiver-driven stealing layered on
// top of config.policy. Only the periodic model is supported (stealing under
// the other models is an orthogonal axis the ablation does not sweep).
TrialResult run_receiver_driven_trial(const ExperimentConfig& config,
                                      const StealingOptions& options,
                                      std::uint64_t seed);

}  // namespace stale::driver
