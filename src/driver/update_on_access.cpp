#include "driver/update_on_access.h"

#include <stdexcept>

namespace stale::driver {

UpdateOnAccessEngine::UpdateOnAccessEngine(
    queueing::Cluster& cluster, policy::SelectionPolicy& policy,
    workload::ArrivalProcess& gaps, const sim::Distribution& job_size,
    double believed_total_rate, int num_clients, sim::Rng& rng)
    : cluster_(cluster),
      policy_(policy),
      gaps_(gaps),
      job_size_(job_size),
      believed_total_rate_(believed_total_rate),
      rng_(rng) {
  if (num_clients < 1) {
    throw std::invalid_argument("UpdateOnAccessEngine: need >= 1 client");
  }
  clients_.resize(static_cast<std::size_t>(num_clients));
  for (int c = 0; c < num_clients; ++c) {
    // Every client starts with the truthful time-zero snapshot (the cluster
    // is empty) and fires for the first time after one sampled gap, which
    // de-phases the population.
    clients_[static_cast<std::size_t>(c)].snapshot.assign(
        static_cast<std::size_t>(cluster.size()), 0);
    next_.push(Pending{gaps_.next_gap(rng_), c});
  }
}

double UpdateOnAccessEngine::step(queueing::ResponseMetrics& metrics) {
  const Pending pending = next_.top();
  next_.pop();
  const double t = pending.when;
  Client& client = clients_[static_cast<std::size_t>(pending.client)];

  cluster_.advance_to(t);

  policy::DispatchContext context;
  context.loads = client.snapshot;
  context.age = t - client.snapshot_time;
  context.lambda_total = believed_total_rate_;
  context.info_version = ++version_;

  context.trace = trace_;
  const int server = policy_.select(context, rng_);
  if (trace_) trace_->on_decision(t, server, context.age);
  const double size = job_size_.sample(rng_);
  const double departure = cluster_.assign(t, server, size);
  metrics.record(departure - t);

  // The reply piggybacks the post-dispatch load vector (what a server-side
  // reporter would observe immediately after accepting the job).
  const auto loads = cluster_.loads();
  client.snapshot.assign(loads.begin(), loads.end());
  client.snapshot_time = t;

  next_.push(Pending{t + gaps_.next_gap(rng_), pending.client});
  return t;
}

}  // namespace stale::driver
