// Multi-dispatcher scale-out layer (ROADMAP: the D-dispatcher regime of
// Goren/Vargaftik/Moses): D dispatchers share one queueing::Cluster, each
// with its own bulletin-board instance and its own staleness clock. The
// arrival stream is split across dispatchers by Poisson thinning, so each
// dispatcher sees an independent Poisson stream whose rate is its share of
// lambda * n.
//
// Two pieces live here, both deterministic and thread-confined to one trial:
//
//   * ArrivalSplitter — maps one RNG draw to a dispatcher index under the
//     configured split (uniform, or a linear ramp of weights for the skewed
//     "weighted" case). At D == 1 it draws nothing, which is what keeps a
//     one-dispatcher run bit-identical to the legacy single-dispatcher path.
//
//   * DispatcherSet — owns the D board instances (one periodic and one
//     individual board per dispatcher, mirroring the legacy trial engine,
//     which constructs both and syncs only the active model). Periodic
//     boards are de-phased with offset d*T/D; individual boards draw their
//     per-server offsets from one split() per dispatcher, in dispatcher
//     order. sync_all_to() interleaves the boards' measurement boundaries in
//     global time order — syncing board A straight to t would advance the
//     cluster past board B's earlier boundary and let B measure the future.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "loadinfo/individual_board.h"
#include "loadinfo/periodic_board.h"
#include "obs/trace_sink.h"
#include "queueing/cluster.h"
#include "sim/rng.h"

namespace stale::dispatch {

// How arrivals are split across the D dispatchers.
//   kUniform  — every dispatcher gets an equal share.
//   kWeighted — dispatcher d gets share proportional to d + 1 (a fixed
//               linear ramp: the "one dispatcher fronts most of the traffic"
//               regime, without adding another knob to sweep).
enum class DispatcherSplit { kUniform, kWeighted };

DispatcherSplit parse_dispatcher_split(const std::string& name);
std::string dispatcher_split_name(DispatcherSplit split);

class ArrivalSplitter {
 public:
  ArrivalSplitter(int num_dispatchers, DispatcherSplit split);

  // Dispatcher for the next arrival. Draws exactly one next_double() when
  // D > 1 and nothing when D == 1.
  int pick(sim::Rng& rng) const;

  // Long-run fraction of arrivals dispatcher d receives.
  double share(int dispatcher) const;

  int size() const { return static_cast<int>(cumulative_.size()); }

 private:
  std::vector<double> cumulative_;  // cumulative shares; back() == 1
};

class DispatcherSet {
 public:
  // Consumes exactly one rng.split() per dispatcher (the individual board's
  // per-server offsets), regardless of which model is active — the same draw
  // discipline as the legacy single-dispatcher trial, so D == 1 reproduces
  // it bit-for-bit.
  DispatcherSet(int num_dispatchers, int num_servers, double update_interval,
                bool use_individual, sim::Rng& rng);

  int size() const { return static_cast<int>(periodic_.size()); }
  bool individual_model() const { return use_individual_; }

  loadinfo::PeriodicBoard& periodic(int d) {
    return periodic_[static_cast<std::size_t>(d)];
  }
  loadinfo::IndividualBoard& individual(int d) {
    return individual_[static_cast<std::size_t>(d)];
  }

  // Active-model accessors (the board dispatcher d actually reads).
  const std::vector<int>& loads(int d) const;
  double age(int d, double t) const;
  std::uint64_t version(int d) const;
  const sim::LevelIndex& level_index(int d) const;
  sim::LevelIndex& level_index_mut(int d);

  // Brings every active board up to date for an observation at `t`,
  // stepping the boards' pending measurement boundaries in global time
  // order (ties go to the lowest dispatcher index).
  void sync_all_to(queueing::Cluster& cluster, double t);

  void enable_level_index();
  void set_trace_sink(obs::TraceSink* sink);

 private:
  bool use_individual_;
  std::vector<loadinfo::PeriodicBoard> periodic_;
  std::vector<loadinfo::IndividualBoard> individual_;
};

}  // namespace stale::dispatch
