#include "dispatch/jiq.h"

#include <algorithm>
#include <span>
#include <stdexcept>

#include "check/contracts.h"

namespace stale::dispatch {

std::string JiqSpec::to_string() const {
  if (insertion == JiqInsertion::kRandom) return "jiq";
  return "jiq:sq:" + std::to_string(sq_sample);
}

bool is_jiq_spec(const std::string& policy_spec) {
  return policy_spec == "jiq" || policy_spec.rfind("jiq:", 0) == 0;
}

JiqSpec parse_jiq_spec(const std::string& policy_spec) {
  JiqSpec spec;
  if (policy_spec == "jiq") return spec;
  if (policy_spec == "jiq:sq") {
    spec.insertion = JiqInsertion::kShortestQueue;
    return spec;
  }
  if (policy_spec.rfind("jiq:sq:", 0) == 0) {
    spec.insertion = JiqInsertion::kShortestQueue;
    const std::string arg = policy_spec.substr(7);
    std::size_t pos = 0;
    int k = 0;
    try {
      k = std::stoi(arg, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != arg.size() || k < 1) {
      throw std::invalid_argument("parse_jiq_spec: bad sample count in '" +
                                  policy_spec + "' (want jiq:sq:K, K >= 1)");
    }
    spec.sq_sample = k;
    return spec;
  }
  throw std::invalid_argument("parse_jiq_spec: unknown JIQ spec '" +
                              policy_spec +
                              "' (known: jiq, jiq:sq, jiq:sq:K)");
}

TokenDirectory::TokenDirectory(int num_servers, int num_dispatchers,
                               int token_budget)
    : budget_(token_budget) {
  if (num_servers < 1) {
    throw std::invalid_argument("TokenDirectory: need at least one server");
  }
  if (num_dispatchers < 1) {
    throw std::invalid_argument(
        "TokenDirectory: need at least one dispatcher");
  }
  if (token_budget < 0) {
    throw std::invalid_argument("TokenDirectory: token budget must be >= 0");
  }
  queues_.resize(static_cast<std::size_t>(num_dispatchers));
  holder_.assign(static_cast<std::size_t>(num_servers), -1);
  epoch_.assign(static_cast<std::size_t>(num_servers), 0);
  valid_count_.assign(static_cast<std::size_t>(num_dispatchers), 0);
}

int TokenDirectory::offer(int server, const JiqSpec& spec, sim::Rng& rng) {
  STALE_DCHECK(server >= 0 && server < num_servers());
  const auto s = static_cast<std::size_t>(server);
  if (holder_[s] >= 0) return -1;  // at most one token per server
  const int num_d = num_dispatchers();
  int target;
  if (spec.insertion == JiqInsertion::kRandom || num_d == 1) {
    target = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(num_d)));
  } else {
    // JIQ-SQ(d): sample sq_sample distinct dispatchers, join the shortest
    // I-queue. The winner is chosen by (count, index), not sample order, so
    // the pick is deterministic even though sample_distinct's output order
    // is unspecified.
    const int k = std::min(spec.sq_sample, num_d);
    int sampled[64];
    std::vector<int> big;
    std::span<int> out;
    if (k <= 64) {
      out = std::span<int>(sampled, static_cast<std::size_t>(k));
    } else {
      big.resize(static_cast<std::size_t>(k));
      out = big;
    }
    policy::sample_distinct(num_d, k, rng, out);
    target = out[0];
    for (int i = 1; i < k; ++i) {
      const int d = out[static_cast<std::size_t>(i)];
      if (valid_count_[static_cast<std::size_t>(d)] <
              valid_count_[static_cast<std::size_t>(target)] ||
          (valid_count_[static_cast<std::size_t>(d)] ==
               valid_count_[static_cast<std::size_t>(target)] &&
           d < target)) {
        target = d;
      }
    }
  }
  const auto td = static_cast<std::size_t>(target);
  if (budget_ > 0 && valid_count_[td] >= budget_) {
    ++dropped_;  // message-rate budget spent; the server stays tokenless
    return -1;
  }
  ++offered_;
  ++epoch_[s];
  queues_[td].push_back({server, epoch_[s]});
  holder_[s] = target;
  ++valid_count_[td];
  return target;
}

int TokenDirectory::claim(int dispatcher) {
  STALE_DCHECK(dispatcher >= 0 && dispatcher < num_dispatchers());
  std::deque<Entry>& queue = queues_[static_cast<std::size_t>(dispatcher)];
  while (!queue.empty()) {
    const Entry entry = queue.front();
    queue.pop_front();
    const auto s = static_cast<std::size_t>(entry.server);
    // Stale entries (invalidated, or superseded by a newer offer) are
    // recognized by holder/epoch mismatch and skipped.
    if (holder_[s] != dispatcher || epoch_[s] != entry.epoch) continue;
    holder_[s] = -1;
    --valid_count_[static_cast<std::size_t>(dispatcher)];
    ++claimed_;
    return entry.server;
  }
  return -1;
}

void TokenDirectory::invalidate(int server) {
  STALE_DCHECK(server >= 0 && server < num_servers());
  const auto s = static_cast<std::size_t>(server);
  if (holder_[s] < 0) return;
  --valid_count_[static_cast<std::size_t>(holder_[s])];
  holder_[s] = -1;  // the queued entry goes stale; claim() will skip it
  ++invalidated_;
}

int TokenDirectory::total_queued() const {
  int total = 0;
  for (int count : valid_count_) total += count;
  return total;
}

void TokenDirectory::audit(const char* where) const {
  // Recount live entries per dispatcher from scratch and cross-check every
  // cached structure against the scan.
  std::vector<int> recount(valid_count_.size(), 0);
  std::vector<int> per_server(holder_.size(), 0);
  for (std::size_t d = 0; d < queues_.size(); ++d) {
    for (const Entry& entry : queues_[d]) {
      const auto s = static_cast<std::size_t>(entry.server);
      if (holder_[s] == static_cast<int>(d) && epoch_[s] == entry.epoch) {
        ++recount[d];
        ++per_server[s];
      }
    }
  }
  for (std::size_t d = 0; d < valid_count_.size(); ++d) {
    STALE_ASSERT(recount[d] == valid_count_[d],
                 "TokenDirectory::audit: cached valid count diverged from "
                 "queue scan");
    STALE_ASSERT(budget_ == 0 || valid_count_[d] <= budget_,
                 "TokenDirectory::audit: token budget exceeded");
  }
  for (std::size_t s = 0; s < holder_.size(); ++s) {
    STALE_ASSERT(per_server[s] == (holder_[s] >= 0 ? 1 : 0),
                 "TokenDirectory::audit: a held token must have exactly one "
                 "live queue entry (and an unheld server none)");
  }
  STALE_ASSERT(offered_ == claimed_ + invalidated_ +
                               static_cast<std::uint64_t>(total_queued()),
               "TokenDirectory::audit: token conservation violated "
               "(offered != claimed + invalidated + queued)");
  (void)where;
}

JiqPolicy::JiqPolicy(TokenDirectory* directory, int dispatcher, JiqSpec spec)
    : directory_(directory), dispatcher_(dispatcher), spec_(spec) {
  if (directory == nullptr) {
    throw std::invalid_argument("JiqPolicy: null token directory");
  }
  if (dispatcher < 0 || dispatcher >= directory->num_dispatchers()) {
    throw std::invalid_argument("JiqPolicy: dispatcher index out of range");
  }
}

int JiqPolicy::select(const policy::DispatchContext& context, sim::Rng& rng) {
  int server;
  while ((server = directory_->claim(dispatcher_)) >= 0) {
    // A token can outlive the dispatcher's belief in its server (quarantine
    // raced the invalidation sweep); discard rather than dispatch into a
    // known-dead queue.
    if (!context.known_dead(server)) return server;
    context.count_sanitize_event();
  }
  // Empty I-queue: JIQ's information-free fallback. Uniform over the
  // candidate set keeps the fallback immune to stale boards — the property
  // the herd-amplification battery measures.
  return policy::pick_uniform_alive(context.alive, context.loads.size(), rng);
}

std::string JiqPolicy::name() const { return spec_.to_string(); }

}  // namespace stale::dispatch
