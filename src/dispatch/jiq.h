// Join-Idle-Queue (Lu et al.; analyzed for the multi-dispatcher regime by
// Mitzenmacher and by Goren/Vargaftik/Moses — see PAPERS.md): instead of
// dispatchers reading a (stale) load board, idle servers push a token into
// one dispatcher's I-queue. A dispatcher with a queued token sends the next
// arrival there — guaranteed idle at token time, no load information read —
// and falls back to a uniform pick when its I-queue is empty. Because the
// token is created by the server at the moment it idles, JIQ has no staleness
// window to misinterpret: the herd amplification that greedy-on-stale suffers
// as the dispatcher count D grows simply has no channel to act through.
//
// The TokenDirectory is the shared token state for one simulated trial: at
// most one token per server, FIFO I-queues per dispatcher, lazy invalidation
// (a stale deque entry is recognized by an epoch mismatch and skipped at
// claim time), and an optional per-dispatcher token budget so JIQ can be
// compared against LI at a matched message rate (a budget-dropped token is a
// heartbeat the server was not allowed to send).
//
// Thread-confinement contract matches the rest of the simulation: one
// directory per trial, owned by the trial's worker thread, no locks.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "policy/policy.h"
#include "sim/rng.h"

namespace stale::dispatch {

// How an idling server picks the dispatcher whose I-queue gets its token.
//   kRandom        — uniform over the D dispatchers (JIQ-Random).
//   kShortestQueue — sample sq_sample dispatchers, join the one with the
//                    fewest queued tokens (JIQ-SQ(d)).
enum class JiqInsertion { kRandom, kShortestQueue };

struct JiqSpec {
  JiqInsertion insertion = JiqInsertion::kRandom;
  int sq_sample = 2;  // the d in JIQ-SQ(d); >= 1
  std::string to_string() const;
};

// True for the JIQ policy family ("jiq", "jiq:sq", "jiq:sq:K"). These specs
// are owned by the dispatch layer, not policy_factory: a JIQ policy is a view
// onto shared token state only the multi-dispatcher engine can provide.
bool is_jiq_spec(const std::string& policy_spec);

// Parses a JIQ spec; throws std::invalid_argument naming the offender.
JiqSpec parse_jiq_spec(const std::string& policy_spec);

// Shared idle-token state across the D dispatchers of one trial.
class TokenDirectory {
 public:
  // `token_budget` caps the valid tokens queued per dispatcher; 0 = no cap.
  TokenDirectory(int num_servers, int num_dispatchers, int token_budget = 0);

  // Server `server` went idle: queues its token per `spec` (drawing the
  // dispatcher choice from `rng`). Returns the accepting dispatcher, or -1
  // when the token was dropped (budget) or the server already holds one.
  int offer(int server, const JiqSpec& spec, sim::Rng& rng);

  // Pops dispatcher `d`'s oldest valid token; -1 when its I-queue is empty.
  int claim(int dispatcher);

  // Retires `server`'s token wherever it is queued. Called when the server
  // receives a job (tokens mean "idle"), crashes, or is quarantined by the
  // health layer — the "never dangle" half of token conservation.
  void invalidate(int server);

  bool has_token(int server) const {
    return holder_[static_cast<std::size_t>(server)] >= 0;
  }
  // Dispatcher holding `server`'s token, or -1.
  int holder(int server) const {
    return holder_[static_cast<std::size_t>(server)];
  }
  int queued(int dispatcher) const {
    return valid_count_[static_cast<std::size_t>(dispatcher)];
  }
  int total_queued() const;

  int num_servers() const { return static_cast<int>(holder_.size()); }
  int num_dispatchers() const { return static_cast<int>(queues_.size()); }
  int token_budget() const { return budget_; }

  // Lifecycle counters. Conservation invariant (audited):
  //   offered == claimed + invalidated + total_queued().
  std::uint64_t offered() const { return offered_; }
  std::uint64_t claimed() const { return claimed_; }
  std::uint64_t invalidated() const { return invalidated_; }
  std::uint64_t dropped() const { return dropped_; }

  // Full-state invariant check (wrap in STALE_AUDIT): per-dispatcher valid
  // counts match a queue scan, every held token has exactly one live entry,
  // the budget is respected, and the lifecycle counters conserve.
  void audit(const char* where) const;

 private:
  struct Entry {
    int server;
    std::uint64_t epoch;  // live iff it matches epoch_[server] while held
  };

  std::vector<std::deque<Entry>> queues_;  // per dispatcher, FIFO
  std::vector<int> holder_;                // per server; -1 = no token
  std::vector<std::uint64_t> epoch_;       // bumped per offer
  std::vector<int> valid_count_;           // per dispatcher
  int budget_;
  std::uint64_t offered_ = 0;
  std::uint64_t claimed_ = 0;
  std::uint64_t invalidated_ = 0;
  std::uint64_t dropped_ = 0;
};

// One dispatcher's view of the shared directory, shaped as a SelectionPolicy
// so the trial engines and the live dispatcher drive JIQ exactly like the LI
// family. select() claims a token (skipping any server the context's alive
// mask marks dead) and falls back to uniform-over-alive on an empty I-queue.
// info_demand() is 0: JIQ reads no load values at all.
class JiqPolicy : public policy::SelectionPolicy {
 public:
  JiqPolicy(TokenDirectory* directory, int dispatcher, JiqSpec spec);

  int select(const policy::DispatchContext& context, sim::Rng& rng) override;
  std::string name() const override;
  int info_demand() const override { return 0; }

  const JiqSpec& spec() const { return spec_; }

 private:
  TokenDirectory* directory_;  // not owned; shared across dispatchers
  int dispatcher_;
  JiqSpec spec_;
};

}  // namespace stale::dispatch
