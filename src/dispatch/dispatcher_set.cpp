#include "dispatch/dispatcher_set.h"

#include <algorithm>
#include <stdexcept>

#include "check/contracts.h"

namespace stale::dispatch {

DispatcherSplit parse_dispatcher_split(const std::string& name) {
  if (name == "uniform") return DispatcherSplit::kUniform;
  if (name == "weighted") return DispatcherSplit::kWeighted;
  throw std::invalid_argument("parse_dispatcher_split: unknown split '" +
                              name + "' (known: uniform, weighted)");
}

std::string dispatcher_split_name(DispatcherSplit split) {
  switch (split) {
    case DispatcherSplit::kUniform:
      return "uniform";
    case DispatcherSplit::kWeighted:
      return "weighted";
  }
  throw std::logic_error("dispatcher_split_name: bad enum");
}

ArrivalSplitter::ArrivalSplitter(int num_dispatchers, DispatcherSplit split) {
  if (num_dispatchers < 1) {
    throw std::invalid_argument(
        "ArrivalSplitter: need at least one dispatcher");
  }
  cumulative_.resize(static_cast<std::size_t>(num_dispatchers));
  double total = 0.0;
  for (int d = 0; d < num_dispatchers; ++d) {
    const double weight =
        split == DispatcherSplit::kUniform ? 1.0 : static_cast<double>(d + 1);
    total += weight;
    cumulative_[static_cast<std::size_t>(d)] = total;
  }
  for (double& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;  // exact upper edge despite rounding
}

int ArrivalSplitter::pick(sim::Rng& rng) const {
  if (cumulative_.size() == 1) return 0;
  const double u = rng.next_double();
  // D is small (a handful of dispatcher front-ends); a linear scan beats a
  // binary search at these sizes and keeps the draw-to-index map obvious.
  for (std::size_t d = 0; d + 1 < cumulative_.size(); ++d) {
    if (u < cumulative_[d]) return static_cast<int>(d);
  }
  return static_cast<int>(cumulative_.size()) - 1;
}

double ArrivalSplitter::share(int dispatcher) const {
  const auto d = static_cast<std::size_t>(dispatcher);
  return d == 0 ? cumulative_[0] : cumulative_[d] - cumulative_[d - 1];
}

DispatcherSet::DispatcherSet(int num_dispatchers, int num_servers,
                             double update_interval, bool use_individual,
                             sim::Rng& rng)
    : use_individual_(use_individual) {
  if (num_dispatchers < 1) {
    throw std::invalid_argument("DispatcherSet: need at least one dispatcher");
  }
  periodic_.reserve(static_cast<std::size_t>(num_dispatchers));
  individual_.reserve(static_cast<std::size_t>(num_dispatchers));
  for (int d = 0; d < num_dispatchers; ++d) {
    // De-phased periodic schedules: dispatcher d refreshes at d*T/D + k*T,
    // so the D staleness clocks tile the interval instead of going stale in
    // lockstep. d == 0 keeps offset 0 — the legacy schedule.
    const double offset = update_interval * static_cast<double>(d) /
                          static_cast<double>(num_dispatchers);
    periodic_.emplace_back(num_servers, update_interval, offset);
    sim::Rng offsets_rng = rng.split();
    individual_.emplace_back(num_servers, update_interval, offsets_rng);
  }
}

const std::vector<int>& DispatcherSet::loads(int d) const {
  const auto i = static_cast<std::size_t>(d);
  return use_individual_ ? individual_[i].loads() : periodic_[i].loads();
}

double DispatcherSet::age(int d, double t) const {
  const auto i = static_cast<std::size_t>(d);
  return use_individual_ ? individual_[i].mean_age(t) : periodic_[i].age(t);
}

std::uint64_t DispatcherSet::version(int d) const {
  const auto i = static_cast<std::size_t>(d);
  return use_individual_ ? individual_[i].version() : periodic_[i].version();
}

const sim::LevelIndex& DispatcherSet::level_index(int d) const {
  const auto i = static_cast<std::size_t>(d);
  return use_individual_ ? individual_[i].level_index()
                         : periodic_[i].level_index();
}

sim::LevelIndex& DispatcherSet::level_index_mut(int d) {
  const auto i = static_cast<std::size_t>(d);
  return use_individual_ ? individual_[i].level_index_mut()
                         : periodic_[i].level_index_mut();
}

void DispatcherSet::sync_all_to(queueing::Cluster& cluster, double t) {
  // Interleave the boards' measurement boundaries in global time order by
  // granting the due board a time *slice*: it syncs through every boundary
  // of its own that precedes the next boundary of any other board (or t),
  // so no board's measurement can observe cluster state from another
  // board's future, while each board's own sync() call keeps its internal
  // measure-then-publish discipline intact. At D == 1 the slice is always
  // t — one sync(cluster, t) per arrival, exactly the legacy engine's call
  // sequence, which is what keeps one-dispatcher runs bit-identical.
  const auto next_refresh = [&](int d) {
    const auto i = static_cast<std::size_t>(d);
    return use_individual_ ? individual_[i].next_refresh_at()
                           : periodic_[i].next_refresh_at();
  };
  while (true) {
    int best = -1;
    double best_time = 0.0;
    for (int d = 0; d < size(); ++d) {
      const double next = next_refresh(d);
      if (next <= t && (best < 0 || next < best_time)) {
        best = d;
        best_time = next;
      }
    }
    if (best < 0) break;
    // Ties land the slice boundary on best_time itself; sync()'s inclusive
    // bound still processes the due boundary, and the tied board (a higher
    // dispatcher index, by the strict < above) goes next iteration.
    double slice_end = t;
    for (int d = 0; d < size(); ++d) {
      if (d != best) slice_end = std::min(slice_end, next_refresh(d));
    }
    const auto i = static_cast<std::size_t>(best);
    if (use_individual_) {
      individual_[i].sync(cluster, slice_end);
    } else {
      periodic_[i].sync(cluster, slice_end);
    }
    STALE_DCHECK(next_refresh(best) > slice_end);
  }
}

void DispatcherSet::enable_level_index() {
  for (int d = 0; d < size(); ++d) {
    const auto i = static_cast<std::size_t>(d);
    if (use_individual_) {
      individual_[i].enable_level_index();
    } else {
      periodic_[i].enable_level_index();
    }
  }
}

void DispatcherSet::set_trace_sink(obs::TraceSink* sink) {
  for (std::size_t i = 0; i < periodic_.size(); ++i) {
    periodic_[i].set_trace_sink(sink);
    individual_[i].set_trace_sink(sink);
  }
}

}  // namespace stale::dispatch
