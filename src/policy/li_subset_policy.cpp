#include "policy/li_subset_policy.h"

#include <stdexcept>
#include <string>

#include "check/audit.h"
#include "core/load_interpretation.h"
#include "core/sampler.h"

namespace stale::policy {

LiSubsetPolicy::LiSubsetPolicy(int k) : k_(k) {
  if (k < 1) throw std::invalid_argument("LiSubsetPolicy: k must be >= 1");
}

int LiSubsetPolicy::select(const DispatchContext& context, sim::Rng& rng) {
  const int n = static_cast<int>(context.loads.size());
  const int k = std::min(k_, n);
  indices_.resize(static_cast<std::size_t>(k));
  sample_distinct(n, k, rng, indices_);

  subset_loads_.resize(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    subset_loads_[static_cast<std::size_t>(i)] =
        context.loads[static_cast<std::size_t>(
            indices_[static_cast<std::size_t>(i)])];
  }

  // The k sampled servers see, in expectation, k/n of the cluster's arrivals
  // over the interpretation window.
  const double subset_arrivals = context.basic_li_expected_arrivals() *
                                 static_cast<double>(k) /
                                 static_cast<double>(n);
  std::vector<double> p = core::basic_li_probabilities(
      std::span<const double>(subset_loads_), subset_arrivals);
  if (!context.alive.empty()) {
    // Project the cluster-wide liveness mask onto the sampled subset so the
    // sanitizer can steer mass off known-dead members.
    subset_alive_.resize(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      subset_alive_[static_cast<std::size_t>(i)] =
          context.alive[static_cast<std::size_t>(
              indices_[static_cast<std::size_t>(i)])];
    }
  }
  const bool repaired = sanitize_probabilities(
      p, context.alive.empty() ? std::span<const std::uint8_t>{}
                               : std::span<const std::uint8_t>(subset_alive_));
  if (repaired) context.count_sanitize_event();
  STALE_AUDIT(
      check::audit_dispatch_weights(p, !repaired, "LiSubsetPolicy::select"));
  context.trace_probabilities(p);
  const core::DiscreteSampler sampler{std::span<const double>(p)};
  return indices_[static_cast<std::size_t>(sampler.sample(rng))];
}

std::string LiSubsetPolicy::name() const {
  return "basic_li_k:" + std::to_string(k_);
}

}  // namespace stale::policy
