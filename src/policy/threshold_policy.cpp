#include "policy/threshold_policy.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace stale::policy {

ThresholdPolicy::ThresholdPolicy(int k, int threshold)
    : k_(k), threshold_(threshold) {
  if (k < 1 && k != kAllServers) {
    throw std::invalid_argument("ThresholdPolicy: k must be >= 1 or kAll");
  }
  if (threshold < 0) {
    throw std::invalid_argument("ThresholdPolicy: threshold must be >= 0");
  }
}

int ThresholdPolicy::select(const DispatchContext& context, sim::Rng& rng) {
  const int n = static_cast<int>(context.loads.size());
  if (k_ == kAllServers && context.use_bucketed()) {
    // Full-information threshold rule in O(#levels): uniform over all
    // servers at/below the threshold; when everyone is heavy, uniform over
    // the least-loaded level (the reservoir's tie-break distribution).
    const sim::LevelHistogram& hist = context.levels->histogram();
    if (hist.count_at_or_below(threshold_) > 0) {
      return context.levels->pick_uniform_at_or_below(threshold_, rng);
    }
    return context.levels->pick_uniform_in_level(hist.min_level(), rng);
  }
  const int k = k_ == kAllServers ? n : std::min(k_, n);
  scratch_.resize(static_cast<std::size_t>(k));
  if (k == n) {
    for (int i = 0; i < n; ++i) scratch_[static_cast<std::size_t>(i)] = i;
  } else {
    sample_distinct(n, k, rng, scratch_);
  }

  // Uniform choice among sampled servers at/below the threshold, selected
  // with one pass of reservoir sampling.
  int light_count = 0;
  int light_choice = -1;
  int best = scratch_[0];
  int best_load = context.loads[static_cast<std::size_t>(best)];
  int best_ties = 1;
  for (int i = 0; i < k; ++i) {
    const int candidate = scratch_[static_cast<std::size_t>(i)];
    const int load = context.loads[static_cast<std::size_t>(candidate)];
    if (load <= threshold_) {
      ++light_count;
      if (rng.next_below(static_cast<std::uint64_t>(light_count)) == 0) {
        light_choice = candidate;
      }
    }
    if (i > 0) {
      if (load < best_load) {
        best = candidate;
        best_load = load;
        best_ties = 1;
      } else if (load == best_load) {
        ++best_ties;
        if (rng.next_below(static_cast<std::uint64_t>(best_ties)) == 0) {
          best = candidate;
        }
      }
    }
  }
  return light_count > 0 ? light_choice : best;
}

std::string ThresholdPolicy::name() const {
  // Built with appends rather than operator+ chains: GCC 12's -Wrestrict
  // false-positives (PR105329) on the temporary-concat pattern at -O3.
  std::string base = "threshold:";
  base += (k_ == kAllServers ? std::string("all") : std::to_string(k_));
  base += ':';
  base += std::to_string(threshold_);
  return base;
}

}  // namespace stale::policy
