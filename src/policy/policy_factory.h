// String-spec factory for dispatch policies, so experiment configs and bench
// CLIs can name algorithms:
//   "random"            oblivious uniform random
//   "k_subset:K"        Mitzenmacher's k-subset
//   "threshold:K:T"     threshold over a K-sample ("all" for K = n)
//   "basic_li"          Basic Load Interpretation
//   "aggressive_li"     Aggressive Load Interpretation
//   "hybrid_li"         Hybrid Load Interpretation
//   "basic_li_k:K"      Basic LI over a random K-subset of information
#pragma once

#include <string>
#include <vector>

#include "policy/policy.h"

namespace stale::policy {

// Throws std::invalid_argument on unknown or malformed specs.
PolicyPtr make_policy(const std::string& spec);

// All specs the factory understands, with placeholder parameters (used by
// --help output and tests).
std::vector<std::string> known_policy_specs();

// Board-representation spec used by --board-repr: "auto", "vector", or
// "bucketed". Throws std::invalid_argument on anything else.
BoardRepr parse_board_repr(const std::string& spec);
const char* board_repr_name(BoardRepr repr);

}  // namespace stale::policy
