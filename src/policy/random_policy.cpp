#include "policy/random_policy.h"

namespace stale::policy {

int RandomPolicy::select(const DispatchContext& context, sim::Rng& rng) {
  return static_cast<int>(rng.next_below(context.loads.size()));
}

}  // namespace stale::policy
