#include "policy/hybrid_li_policy.h"

#include <vector>

#include "core/load_interpretation.h"

namespace stale::policy {

int HybridLiPolicy::select(const DispatchContext& context, sim::Rng& rng) {
  if (!first_sampler_ || cached_version_ != context.info_version) {
    std::vector<double> loads(context.loads.begin(), context.loads.end());
    first_interval_jobs_ = core::hybrid_li_first_interval_jobs(loads);
    const std::vector<double> p =
        core::hybrid_li_first_interval_probabilities(loads);
    first_sampler_.emplace(std::span<const double>(p));
    cached_version_ = context.info_version;
  }
  // Expected arrivals consumed so far in this window: elapsed time under
  // periodic update, information age otherwise.
  const double consumed =
      context.lambda_total *
      (context.periodic() ? context.phase_elapsed : context.age);
  if (consumed < first_interval_jobs_) {
    return first_sampler_->sample(rng);
  }
  return static_cast<int>(rng.next_below(context.loads.size()));
}

}  // namespace stale::policy
