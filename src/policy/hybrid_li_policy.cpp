#include "policy/hybrid_li_policy.h"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "check/audit.h"
#include "core/load_interpretation.h"

namespace stale::policy {

int HybridLiPolicy::select(const DispatchContext& context, sim::Rng& rng) {
  if (context.loads.empty()) {
    throw std::invalid_argument("HybridLiPolicy: empty load vector");
  }
  if (context.use_bucketed()) return select_bucketed(context, rng);
  if (!first_sampler_ || cached_bucketed_ ||
      cached_version_ != context.info_version) {
    std::vector<double> loads(context.loads.begin(), context.loads.end());
    first_interval_jobs_ = core::hybrid_li_first_interval_jobs(loads);
    std::vector<double> p =
        core::hybrid_li_first_interval_probabilities(loads);
    const bool repaired = sanitize_probabilities(p, context.alive);
    if (repaired) context.count_sanitize_event();
    STALE_AUDIT(
        check::audit_dispatch_weights(p, !repaired, "HybridLiPolicy::select"));
    context.trace_probabilities(p);
    first_sampler_.emplace(std::span<const double>(p));
    cached_version_ = context.info_version;
    cached_bucketed_ = false;
  }
  // Expected arrivals consumed so far in this window: elapsed time under
  // periodic update, information age otherwise. Degrade a non-finite or
  // negative estimate to 0 (treat the window as just begun).
  double consumed =
      context.lambda_total *
      (context.periodic() ? context.phase_elapsed : context.age);
  if (!std::isfinite(consumed) || consumed < 0.0) consumed = 0.0;
  if (consumed < first_interval_jobs_) {
    return first_sampler_->sample(rng);
  }
  // Second subinterval: uniform — over known-alive servers when a fault
  // layer supplies liveness (identical draw sequence when it doesn't).
  return pick_uniform_alive(context.alive, context.loads.size(), rng);
}

int HybridLiPolicy::select_bucketed(const DispatchContext& context,
                                    sim::Rng& rng) {
  const sim::LevelHistogram& hist = context.levels->histogram();
  if (!first_level_sampler_ || !cached_bucketed_ ||
      cached_version_ != context.info_version) {
    first_interval_jobs_ = core::hybrid_li_first_interval_jobs(hist);
    const std::vector<double> masses =
        core::hybrid_li_first_interval_level_masses(hist);
    // Equivalence vs the vector path only holds at full membership; with
    // quarantined servers retired from the index the representations diverge
    // by design (see policy.h: levels_exclude_quarantined).
    STALE_AUDIT(context.levels->retired_count() == 0
                    ? core::audit_hybrid_equivalence(
                          masses, first_interval_jobs_, context.loads,
                          "HybridLiPolicy::select_bucketed")
                    : void());
    if (context.trace != nullptr) trace_level_masses(context, masses);
    first_level_sampler_.emplace(std::span<const double>(masses));
    cached_version_ = context.info_version;
    cached_bucketed_ = true;
  }
  double consumed =
      context.lambda_total *
      (context.periodic() ? context.phase_elapsed : context.age);
  if (!std::isfinite(consumed) || consumed < 0.0) consumed = 0.0;
  if (consumed < first_interval_jobs_) {
    return first_level_sampler_->sample(*context.levels, rng);
  }
  // Second subinterval: uniform (no liveness mask on the bucketed path).
  return pick_uniform_alive(context.alive, context.loads.size(), rng);
}

}  // namespace stale::policy
