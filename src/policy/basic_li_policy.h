// Basic Load Interpretation (paper Section 4.1, Eqs. 2-4).
//
// Periodic update model: once per phase, compute the probability vector that
// equalizes expected queue lengths by the end of the phase (K = lambda * T)
// and sample every request of the phase from it. The vector is cached on the
// context's info_version.
//
// Continuous / update-on-access models (Section 4.2): same equation with
// K = lambda * age, recomputed whenever the view changes (every request).
#pragma once

#include <cstdint>
#include <optional>

#include "core/li_bucketed.h"
#include "core/sampler.h"
#include "policy/policy.h"

namespace stale::policy {

class BasicLiPolicy final : public SelectionPolicy {
 public:
  BasicLiPolicy() = default;

  int select(const DispatchContext& context, sim::Rng& rng) override;
  std::string name() const override { return "basic_li"; }

 private:
  int select_bucketed(const DispatchContext& context, sim::Rng& rng);

  std::uint64_t cached_version_ = 0;
  double cached_arrivals_ = -1.0;
  bool cached_bucketed_ = false;
  std::optional<core::DiscreteSampler> sampler_;
  std::optional<core::LevelSampler> level_sampler_;
};

}  // namespace stale::policy
