#include "policy/k_subset_policy.h"

#include <stdexcept>
#include <string>

namespace stale::policy {

KSubsetPolicy::KSubsetPolicy(int k) : k_(k) {
  if (k < 1) throw std::invalid_argument("KSubsetPolicy: k must be >= 1");
}

int KSubsetPolicy::select(const DispatchContext& context, sim::Rng& rng) {
  const int n = static_cast<int>(context.loads.size());
  const int k = std::min(k_, n);
  scratch_.resize(static_cast<std::size_t>(k));
  sample_distinct(n, k, rng, scratch_);

  int best = scratch_[0];
  int best_load = context.loads[static_cast<std::size_t>(best)];
  int ties = 1;
  for (int i = 1; i < k; ++i) {
    const int candidate = scratch_[static_cast<std::size_t>(i)];
    const int load = context.loads[static_cast<std::size_t>(candidate)];
    if (load < best_load) {
      best = candidate;
      best_load = load;
      ties = 1;
    } else if (load == best_load) {
      // Reservoir-style uniform tie-break among equal minima.
      ++ties;
      if (rng.next_below(static_cast<std::uint64_t>(ties)) == 0) {
        best = candidate;
      }
    }
  }
  return best;
}

std::string KSubsetPolicy::name() const {
  return "k_subset:" + std::to_string(k_);
}

}  // namespace stale::policy
