#include "policy/aggressive_li_policy.h"

namespace stale::policy {

int AggressiveLiPolicy::select(const DispatchContext& context, sim::Rng& rng) {
  if (!schedule_ || cached_version_ != context.info_version) {
    schedule_.emplace(core::make_aggressive_schedule(context.loads));
    cached_version_ = context.info_version;
  }
  int group;
  if (context.periodic()) {
    group = core::aggressive_group_at(
        *schedule_, context.lambda_total * context.phase_elapsed);
  } else {
    group = core::aggressive_stationary_group(
        *schedule_, context.lambda_total * context.age);
  }
  // Uniform over the `group` least-loaded servers.
  const auto pick = rng.next_below(static_cast<std::uint64_t>(group));
  return schedule_->order[static_cast<std::size_t>(pick)];
}

}  // namespace stale::policy
