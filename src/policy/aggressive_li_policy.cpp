#include "policy/aggressive_li_policy.h"

#include <cmath>
#include <stdexcept>

namespace stale::policy {

int AggressiveLiPolicy::select(const DispatchContext& context, sim::Rng& rng) {
  if (context.loads.empty()) {
    throw std::invalid_argument("AggressiveLiPolicy: empty load vector");
  }
  if (!schedule_ || cached_version_ != context.info_version) {
    schedule_.emplace(core::make_aggressive_schedule(context.loads));
    cached_version_ = context.info_version;
  }
  // A degraded rate estimate (no samples yet, or overflow) yields a
  // non-finite or negative expected-arrival count; degrade to "start of
  // schedule" rather than feeding garbage into the group lookup.
  double jobs_elapsed =
      context.lambda_total *
      (context.periodic() ? context.phase_elapsed : context.age);
  if (!std::isfinite(jobs_elapsed) || jobs_elapsed < 0.0) jobs_elapsed = 0.0;
  const int group = context.periodic()
                        ? core::aggressive_group_at(*schedule_, jobs_elapsed)
                        : core::aggressive_stationary_group(*schedule_,
                                                            jobs_elapsed);
  if (context.alive.empty()) {
    // Uniform over the `group` least-loaded servers (non-fault fast path).
    const auto pick = rng.next_below(static_cast<std::uint64_t>(group));
    return schedule_->order[static_cast<std::size_t>(pick)];
  }
  // Fault run: pick uniformly among the group's known-alive members; if the
  // whole group is believed down, fall back to uniform over alive servers.
  std::uint64_t alive_in_group = 0;
  for (int i = 0; i < group; ++i) {
    const int s = schedule_->order[static_cast<std::size_t>(i)];
    if (!context.known_dead(s)) ++alive_in_group;
  }
  if (alive_in_group == 0) {
    context.count_sanitize_event();
    return pick_uniform_alive(context.alive, context.loads.size(), rng);
  }
  std::uint64_t pick = rng.next_below(alive_in_group);
  for (int i = 0; i < group; ++i) {
    const int s = schedule_->order[static_cast<std::size_t>(i)];
    if (!context.known_dead(s) && pick-- == 0) return s;
  }
  throw std::logic_error("AggressiveLiPolicy: liveness mask changed mid-pick");
}

}  // namespace stale::policy
