#include "policy/aggressive_li_policy.h"

#include <cmath>
#include <stdexcept>

#include "check/contracts.h"

namespace stale::policy {

namespace {

// Degraded-rate-estimate hardening shared by both representations: a
// non-finite or negative expected-arrival count degrades to "start of
// schedule" rather than feeding garbage into the group lookup.
double safe_jobs_elapsed(const DispatchContext& context) {
  double jobs_elapsed =
      context.lambda_total *
      (context.periodic() ? context.phase_elapsed : context.age);
  if (!std::isfinite(jobs_elapsed) || jobs_elapsed < 0.0) jobs_elapsed = 0.0;
  return jobs_elapsed;
}

}  // namespace

namespace {

// Cold path, kept out of select() so the vector-building machinery does not
// weigh on the untraced hot loop: materializes the uniform-over-group
// probability vector the schedule walk implies and hands it to the sink.
// `denom` is the number of eligible group members; when `alive_only` is set,
// known-dead members get probability 0.
[[gnu::noinline]] void trace_implied_group(const DispatchContext& context,
                                           const core::AggressiveSchedule& s,
                                           int group, std::uint64_t denom,
                                           bool alive_only) {
  std::vector<double> p(context.loads.size(), 0.0);
  for (int i = 0; i < group; ++i) {
    const int server = s.order[static_cast<std::size_t>(i)];
    if (alive_only && context.known_dead(server)) continue;
    p[static_cast<std::size_t>(server)] = 1.0 / static_cast<double>(denom);
  }
  context.trace_probabilities(p);
}

}  // namespace

int AggressiveLiPolicy::select(const DispatchContext& context, sim::Rng& rng) {
  if (context.loads.empty()) {
    throw std::invalid_argument("AggressiveLiPolicy: empty load vector");
  }
  if (context.use_bucketed()) return select_bucketed(context, rng);
  if (!schedule_ || cached_version_ != context.info_version) {
    schedule_.emplace(core::make_aggressive_schedule(context.loads));
    bucketed_.reset();
    cached_version_ = context.info_version;
  }
  const double jobs_elapsed = safe_jobs_elapsed(context);
  const int group = context.periodic()
                        ? core::aggressive_group_at(*schedule_, jobs_elapsed)
                        : core::aggressive_stationary_group(*schedule_,
                                                            jobs_elapsed);
  if (context.alive.empty()) {
    // Uniform over the `group` least-loaded servers (non-fault fast path).
    // The implied per-server probability vector is materialized only for the
    // trace sink; the pick itself never touches it.
    if (context.trace != nullptr) {
      trace_implied_group(context, *schedule_, group,
                          static_cast<std::uint64_t>(group), false);
    }
    const auto pick = rng.next_below(static_cast<std::uint64_t>(group));
    return schedule_->order[static_cast<std::size_t>(pick)];
  }
  // Fault run: pick uniformly among the group's known-alive members; if the
  // whole group is believed down, fall back to uniform over alive servers.
  std::uint64_t alive_in_group = 0;
  for (int i = 0; i < group; ++i) {
    const int s = schedule_->order[static_cast<std::size_t>(i)];
    if (!context.known_dead(s)) ++alive_in_group;
  }
  if (alive_in_group == 0) {
    context.count_sanitize_event();
    return pick_uniform_alive(context.alive, context.loads.size(), rng);
  }
  if (context.trace != nullptr) {
    trace_implied_group(context, *schedule_, group, alive_in_group, true);
  }
  std::uint64_t pick = rng.next_below(alive_in_group);
  for (int i = 0; i < group; ++i) {
    const int s = schedule_->order[static_cast<std::size_t>(i)];
    if (!context.known_dead(s) && pick-- == 0) return s;
  }
  throw std::logic_error("AggressiveLiPolicy: liveness mask changed mid-pick");
}

int AggressiveLiPolicy::select_bucketed(const DispatchContext& context,
                                        sim::Rng& rng) {
  if (!bucketed_ || cached_version_ != context.info_version) {
    bucketed_.emplace(
        core::make_bucketed_aggressive_schedule(context.levels->histogram()));
    schedule_.reset();
    cached_version_ = context.info_version;
  }
  const double jobs_elapsed = safe_jobs_elapsed(context);
  const std::int64_t count =
      context.periodic()
          ? core::bucketed_aggressive_count_at(*bucketed_, jobs_elapsed)
          : core::bucketed_aggressive_stationary_count(*bucketed_,
                                                       jobs_elapsed);
  // Equivalence vs the vector path only holds at full membership; with
  // quarantined servers retired from the index the representations diverge
  // by design (see policy.h: levels_exclude_quarantined).
  STALE_AUDIT(context.levels->retired_count() == 0
                  ? core::audit_aggressive_equivalence(
                        *bucketed_, count, context.loads, jobs_elapsed,
                        context.periodic(),
                        "AggressiveLiPolicy::select_bucketed")
                  : void());
  if (context.trace != nullptr) {
    trace_level_masses(context,
                       core::aggressive_level_masses(*bucketed_, count));
  }
  // Uniform over the `count` least-loaded servers: pick a rank in the sorted
  // order, resolved through the level index without materializing the order.
  return context.levels->pick_uniform_in_prefix(count, rng);
}

}  // namespace stale::policy
