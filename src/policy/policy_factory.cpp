#include "policy/policy_factory.h"

#include <sstream>
#include <stdexcept>

#include "policy/aggressive_li_policy.h"
#include "policy/basic_li_policy.h"
#include "policy/hybrid_li_policy.h"
#include "policy/k_subset_policy.h"
#include "policy/li_subset_policy.h"
#include "policy/random_policy.h"
#include "policy/threshold_policy.h"

namespace stale::policy {

namespace {

std::vector<std::string> split(const std::string& spec, char sep) {
  std::vector<std::string> parts;
  std::string token;
  std::istringstream in(spec);
  while (std::getline(in, token, sep)) parts.push_back(token);
  return parts;
}

int parse_int(const std::string& text, const char* what) {
  std::size_t pos = 0;
  int value = 0;
  try {
    value = std::stoi(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("make_policy: bad ") + what +
                                " '" + text + "'");
  }
  if (pos != text.size()) {
    throw std::invalid_argument(std::string("make_policy: bad ") + what +
                                " '" + text + "'");
  }
  return value;
}

}  // namespace

PolicyPtr make_policy(const std::string& spec) {
  const std::vector<std::string> parts = split(spec, ':');
  if (parts.empty()) throw std::invalid_argument("make_policy: empty spec");
  const std::string& kind = parts[0];

  auto expect_arity = [&](std::size_t arity) {
    if (parts.size() != arity) {
      throw std::invalid_argument("make_policy: wrong parameter count for '" +
                                  kind + "'");
    }
  };

  if (kind == "random") {
    expect_arity(1);
    return std::make_unique<RandomPolicy>();
  }
  if (kind == "k_subset") {
    expect_arity(2);
    return std::make_unique<KSubsetPolicy>(parse_int(parts[1], "k"));
  }
  if (kind == "threshold") {
    expect_arity(3);
    const int k = parts[1] == "all" ? SelectionPolicy::kAllServers
                                    : parse_int(parts[1], "k");
    return std::make_unique<ThresholdPolicy>(k,
                                             parse_int(parts[2], "threshold"));
  }
  if (kind == "basic_li") {
    expect_arity(1);
    return std::make_unique<BasicLiPolicy>();
  }
  if (kind == "aggressive_li") {
    expect_arity(1);
    return std::make_unique<AggressiveLiPolicy>();
  }
  if (kind == "hybrid_li") {
    expect_arity(1);
    return std::make_unique<HybridLiPolicy>();
  }
  if (kind == "basic_li_k") {
    expect_arity(2);
    return std::make_unique<LiSubsetPolicy>(parse_int(parts[1], "k"));
  }
  throw std::invalid_argument("make_policy: unknown policy '" + kind + "'");
}

std::vector<std::string> known_policy_specs() {
  return {"random",        "k_subset:K",     "threshold:K:T", "basic_li",
          "aggressive_li", "hybrid_li",      "basic_li_k:K"};
}

BoardRepr parse_board_repr(const std::string& spec) {
  if (spec == "auto") return BoardRepr::kAuto;
  if (spec == "vector") return BoardRepr::kVector;
  if (spec == "bucketed") return BoardRepr::kBucketed;
  throw std::invalid_argument(
      "parse_board_repr: expected auto|vector|bucketed, got '" + spec + "'");
}

const char* board_repr_name(BoardRepr repr) {
  switch (repr) {
    case BoardRepr::kAuto:
      return "auto";
    case BoardRepr::kVector:
      return "vector";
    case BoardRepr::kBucketed:
      return "bucketed";
  }
  throw std::logic_error("board_repr_name: bad enum");
}

}  // namespace stale::policy
