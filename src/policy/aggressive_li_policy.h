// Aggressive Load Interpretation (paper Section 4.1.1, Eq. 5; equivalent to
// Mitzenmacher's Time-Based algorithm).
//
// Periodic update model: build the water-filling schedule from the board
// snapshot once per phase; a request arriving `elapsed` into the phase is
// dispatched uniformly over the group of least-loaded servers in effect
// after lambda * elapsed expected arrivals.
//
// Continuous / update-on-access models (Section 4.2): always use the *last*
// subinterval the schedule would have reached given K = lambda * age — the
// stationary rule, which makes Aggressive LI *less* aggressive than Basic LI
// for old information (exactly the behaviour Figure 6 shows).
#pragma once

#include <cstdint>
#include <optional>

#include "core/aggressive_schedule.h"
#include "core/li_bucketed.h"
#include "policy/policy.h"

namespace stale::policy {

class AggressiveLiPolicy final : public SelectionPolicy {
 public:
  AggressiveLiPolicy() = default;

  int select(const DispatchContext& context, sim::Rng& rng) override;
  std::string name() const override { return "aggressive_li"; }

 private:
  int select_bucketed(const DispatchContext& context, sim::Rng& rng);

  std::uint64_t cached_version_ = 0;
  std::optional<core::AggressiveSchedule> schedule_;
  std::optional<core::BucketedAggressiveSchedule> bucketed_;
};

}  // namespace stale::policy
