// Mitzenmacher's k-subset algorithm (paper Section 2): sample k servers
// uniformly without replacement and dispatch to the one with the lowest
// *reported* load, breaking ties uniformly at random. k = 1 degenerates to
// oblivious random; k = n to "go to the apparent global minimum" (the
// herd-effect-prone greedy rule).
#pragma once

#include <vector>

#include "policy/policy.h"

namespace stale::policy {

class KSubsetPolicy final : public SelectionPolicy {
 public:
  explicit KSubsetPolicy(int k);

  int select(const DispatchContext& context, sim::Rng& rng) override;
  std::string name() const override;
  int info_demand() const override { return k_; }

 private:
  int k_;
  std::vector<int> scratch_;
};

}  // namespace stale::policy
