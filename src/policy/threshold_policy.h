// The threshold algorithm (paper Sections 2 and 5.1, Figure 5): classify
// servers as lightly loaded (reported load <= threshold) or heavily loaded,
// and dispatch uniformly at random among the lightly loaded ones.
//
// Like the paper we combine the rule with a k-sample: the dispatcher samples
// k servers, keeps those at or below the threshold, and picks uniformly among
// them; if the whole sample is heavy it falls back to the least-loaded member
// of the sample. The threshold is thus an aggressiveness dial: threshold 0
// behaves like plain k-subset under load (everyone is "heavy"), while a huge
// threshold behaves like oblivious random (everyone is "light") — which is
// exactly the family Figure 5 sweeps.
#pragma once

#include <vector>

#include "policy/policy.h"

namespace stale::policy {

class ThresholdPolicy final : public SelectionPolicy {
 public:
  // `k` servers sampled per request; `threshold` in queue-length units.
  // Pass k == SelectionPolicy::kAllServers (or k >= n) to consider everyone.
  ThresholdPolicy(int k, int threshold);

  int select(const DispatchContext& context, sim::Rng& rng) override;
  std::string name() const override;
  int info_demand() const override { return k_; }

 private:
  int k_;
  int threshold_;
  std::vector<int> scratch_;
};

}  // namespace stale::policy
