#include "policy/policy.h"

#include <cmath>
#include <stdexcept>

#include "check/audit.h"
#include "check/contracts.h"

namespace stale::policy {

void sample_distinct(int n, int k, sim::Rng& rng, std::span<int> out) {
  if (k < 0 || k > n || out.size() != static_cast<std::size_t>(k)) {
    throw std::invalid_argument("sample_distinct: need 0 <= k <= n");
  }
  // Floyd's algorithm: for j = n-k..n-1 pick t in [0, j]; insert t unless
  // already chosen, else insert j. Yields a uniform k-subset with exactly k
  // draws. Membership test is a linear scan over at most k elements — k is
  // tiny (<= 3 in the paper's sweeps) so this beats any hash set.
  int filled = 0;
  for (int j = n - k; j < n; ++j) {
    const int t = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(j) + 1));
    bool seen = false;
    for (int i = 0; i < filled; ++i) {
      if (out[static_cast<std::size_t>(i)] == t) {
        seen = true;
        break;
      }
    }
    out[static_cast<std::size_t>(filled++)] = seen ? j : t;
  }
}

bool sanitize_probabilities(std::vector<double>& p,
                            std::span<const std::uint8_t> alive) {
  // First pass: detect defects without touching the vector, so a healthy
  // input stays bit-identical (no renormalization drift in non-fault runs).
  bool defective = false;
  double usable_mass = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double v = p[i];
    const bool dead = !alive.empty() && i < alive.size() && alive[i] == 0;
    if (!std::isfinite(v) || v < 0.0 || (dead && v > 0.0)) {
      defective = true;
    } else if (!dead) {
      usable_mass += v;
    }
  }
  if (!defective && usable_mass > 0.0) {
    STALE_AUDIT(check::audit_quarantined_mass(p, alive,
                                              "sanitize_probabilities"));
    return false;
  }

  if (defective) {
    for (std::size_t i = 0; i < p.size(); ++i) {
      const bool dead = !alive.empty() && i < alive.size() && alive[i] == 0;
      if (!std::isfinite(p[i]) || p[i] < 0.0 || dead) p[i] = 0.0;
    }
    usable_mass = 0.0;
    for (double v : p) usable_mass += v;
  }
  if (usable_mass <= 0.0) {
    // Nothing usable survived: uniform over known-alive servers, or over
    // everyone when the mask is empty or marks nobody alive.
    std::size_t alive_count = 0;
    if (!alive.empty()) {
      for (std::size_t i = 0; i < p.size() && i < alive.size(); ++i) {
        if (alive[i] != 0) ++alive_count;
      }
    }
    if (alive_count == 0) {
      const double u = 1.0 / static_cast<double>(p.size());
      for (double& v : p) v = u;
    } else {
      const double u = 1.0 / static_cast<double>(alive_count);
      for (std::size_t i = 0; i < p.size(); ++i) {
        p[i] = (i < alive.size() && alive[i] != 0) ? u : 0.0;
      }
    }
  }
  STALE_AUDIT(
      check::audit_quarantined_mass(p, alive, "sanitize_probabilities"));
  return true;
}

[[gnu::noinline]] void trace_level_masses(
    const DispatchContext& context, std::span<const double> level_masses) {
  if (context.trace == nullptr) return;
  std::vector<double> p(context.loads.size(), 0.0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    // Quarantined servers are retired from the index: the histogram counts
    // only their level peers that remain candidates, and their own mass is
    // exactly zero.
    if (context.known_dead(static_cast<int>(i))) continue;
    const auto level = static_cast<std::size_t>(context.loads[i]);
    if (level >= level_masses.size()) continue;
    const std::int64_t peers =
        context.levels->histogram().count(context.loads[i]);
    if (peers > 0) p[i] = level_masses[level] / static_cast<double>(peers);
  }
  context.trace_probabilities(p);
}

int pick_uniform_alive(std::span<const std::uint8_t> alive, std::size_t n,
                       sim::Rng& rng) {
  if (n == 0) throw std::invalid_argument("pick_uniform_alive: empty cluster");
  std::size_t alive_count = 0;
  for (std::size_t i = 0; i < alive.size() && i < n; ++i) {
    if (alive[i] != 0) ++alive_count;
  }
  if (alive.empty() || alive_count == 0) {
    return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
  }
  std::uint64_t pick = rng.next_below(alive_count);
  for (std::size_t i = 0; i < alive.size() && i < n; ++i) {
    if (alive[i] != 0 && pick-- == 0) return static_cast<int>(i);
  }
  throw std::logic_error("pick_uniform_alive: mask changed underfoot");
}

}  // namespace stale::policy
