#include "policy/policy.h"

#include <stdexcept>

namespace stale::policy {

void sample_distinct(int n, int k, sim::Rng& rng, std::span<int> out) {
  if (k < 0 || k > n || out.size() != static_cast<std::size_t>(k)) {
    throw std::invalid_argument("sample_distinct: need 0 <= k <= n");
  }
  // Floyd's algorithm: for j = n-k..n-1 pick t in [0, j]; insert t unless
  // already chosen, else insert j. Yields a uniform k-subset with exactly k
  // draws. Membership test is a linear scan over at most k elements — k is
  // tiny (<= 3 in the paper's sweeps) so this beats any hash set.
  int filled = 0;
  for (int j = n - k; j < n; ++j) {
    const int t = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(j) + 1));
    bool seen = false;
    for (int i = 0; i < filled; ++i) {
      if (out[static_cast<std::size_t>(i)] == t) {
        seen = true;
        break;
      }
    }
    out[static_cast<std::size_t>(filled++)] = seen ? j : t;
  }
}

}  // namespace stale::policy
