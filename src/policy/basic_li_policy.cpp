#include "policy/basic_li_policy.h"

#include <stdexcept>

#include "check/audit.h"
#include "core/load_interpretation.h"

namespace stale::policy {

int BasicLiPolicy::select(const DispatchContext& context, sim::Rng& rng) {
  if (context.loads.empty()) {
    throw std::invalid_argument("BasicLiPolicy: empty load vector");
  }
  if (context.use_bucketed()) return select_bucketed(context, rng);
  const double expected_arrivals = context.basic_li_expected_arrivals();
  if (!sampler_ || cached_bucketed_ ||
      cached_version_ != context.info_version ||
      cached_arrivals_ != expected_arrivals) {
    std::vector<double> p =
        core::basic_li_probabilities(context.loads, expected_arrivals);
    const bool repaired = sanitize_probabilities(p, context.alive);
    if (repaired) context.count_sanitize_event();
    STALE_AUDIT(
        check::audit_dispatch_weights(p, !repaired, "BasicLiPolicy::select"));
    context.trace_probabilities(p);
    sampler_.emplace(std::span<const double>(p));
    cached_version_ = context.info_version;
    cached_arrivals_ = expected_arrivals;
    cached_bucketed_ = false;
  }
  return sampler_->sample(rng);
}

int BasicLiPolicy::select_bucketed(const DispatchContext& context,
                                   sim::Rng& rng) {
  const double expected_arrivals = context.basic_li_expected_arrivals();
  if (!level_sampler_ || !cached_bucketed_ ||
      cached_version_ != context.info_version ||
      cached_arrivals_ != expected_arrivals) {
    const std::vector<double> masses = core::basic_li_level_masses(
        context.levels->histogram(), expected_arrivals);
    // The vector-path reference spans the full load vector; with quarantined
    // servers retired from the index the representations intentionally
    // diverge, so the equivalence audit only applies at full membership.
    STALE_AUDIT(context.levels->retired_count() == 0
                    ? core::audit_basic_li_equivalence(
                          masses, context.loads, expected_arrivals,
                          "BasicLiPolicy::select_bucketed")
                    : void());
    if (context.trace != nullptr) trace_level_masses(context, masses);
    level_sampler_.emplace(std::span<const double>(masses));
    cached_version_ = context.info_version;
    cached_arrivals_ = expected_arrivals;
    cached_bucketed_ = true;
  }
  return level_sampler_->sample(*context.levels, rng);
}

}  // namespace stale::policy
