#include "policy/basic_li_policy.h"

#include <stdexcept>

#include "check/audit.h"
#include "core/load_interpretation.h"

namespace stale::policy {

int BasicLiPolicy::select(const DispatchContext& context, sim::Rng& rng) {
  if (context.loads.empty()) {
    throw std::invalid_argument("BasicLiPolicy: empty load vector");
  }
  const double expected_arrivals = context.basic_li_expected_arrivals();
  if (!sampler_ || cached_version_ != context.info_version ||
      cached_arrivals_ != expected_arrivals) {
    std::vector<double> p =
        core::basic_li_probabilities(context.loads, expected_arrivals);
    const bool repaired = sanitize_probabilities(p, context.alive);
    if (repaired) context.count_sanitize_event();
    STALE_AUDIT(
        check::audit_dispatch_weights(p, !repaired, "BasicLiPolicy::select"));
    context.trace_probabilities(p);
    sampler_.emplace(std::span<const double>(p));
    cached_version_ = context.info_version;
    cached_arrivals_ = expected_arrivals;
  }
  return sampler_->sample(rng);
}

}  // namespace stale::policy
