// Basic LI-k (paper Section 5.7): Basic Load Interpretation restricted to a
// random k-subset of the load information. Per request: sample k servers,
// run Eqs. 2-4 over just their reported loads with the expected arrivals
// prorated to the subset (K * k / n), and sample the resulting k-point
// distribution. k = n recovers full Basic LI; k = 1 degenerates to oblivious
// random.
#pragma once

#include <vector>

#include "policy/policy.h"

namespace stale::policy {

class LiSubsetPolicy final : public SelectionPolicy {
 public:
  explicit LiSubsetPolicy(int k);

  int select(const DispatchContext& context, sim::Rng& rng) override;
  std::string name() const override;
  int info_demand() const override { return k_; }

 private:
  int k_;
  std::vector<int> indices_;
  std::vector<double> subset_loads_;
  std::vector<std::uint8_t> subset_alive_;
};

}  // namespace stale::policy
