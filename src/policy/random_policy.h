// Oblivious uniform-random dispatch — the paper's "k = 1" baseline. Splits a
// Poisson stream into n independent M/M/1 (or M/G/1) queues, giving the
// closed-form validation target E[T] = 1 / (1 - lambda) for exponential jobs.
#pragma once

#include "policy/policy.h"

namespace stale::policy {

class RandomPolicy final : public SelectionPolicy {
 public:
  int select(const DispatchContext& context, sim::Rng& rng) override;
  std::string name() const override { return "random"; }
  int info_demand() const override { return 0; }
};

}  // namespace stale::policy
