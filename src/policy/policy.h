// The dispatch-policy interface shared by every algorithm in the study.
//
// Per arriving request the staleness model assembles a DispatchContext — the
// stale load vector plus everything the paper lets an algorithm know (the
// information's age, the phase geometry under periodic update, and the
// arrival-rate estimate) — and the policy returns a server index.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "obs/trace_sink.h"
#include "sim/level_histogram.h"
#include "sim/rng.h"

namespace stale::policy {

// How the stale board is represented on the dispatch fast path.
//   kVector   — classic O(n) probability vector over servers.
//   kBucketed — O(#levels) kernels over the level histogram, two-stage
//               sampling (level, then uniform server within the level).
//   kAuto     — bucketed iff the cluster is at least
//               kBucketedAutoThreshold servers (and the run is eligible:
//               no fault injection, not update-on-access).
// Per-LEVEL dispatch distributions are identical across representations
// (audited under STALELOAD_AUDIT); RNG draw sequences differ, so paired
// runs of different representations are not bit-identical.
enum class BoardRepr { kAuto, kVector, kBucketed };

// kAuto switches to the bucketed path at this cluster size. Chosen well
// above every golden/paper configuration (n <= 100) so default runs keep
// their bit-exact historical trajectories.
inline constexpr int kBucketedAutoThreshold = 1024;

struct DispatchContext {
  // Reported (stale) queue length of each server. Always the full vector;
  // subset-based policies sample their own subset so that "restricted
  // information" is a property of the algorithm, as in the paper.
  std::span<const int> loads;

  // Age of the load information this request sees. Under periodic update
  // this equals phase_elapsed; under continuous update it is either the
  // actual sampled delay (Figure 7) or the mean delay (Figure 6), depending
  // on the model configuration; under update-on-access it is the actual
  // snapshot age.
  double age = 0.0;

  // Estimated aggregate arrival rate across the cluster (lambda * n), after
  // any misestimation factor the experiment applies (Figures 12-13).
  double lambda_total = 0.0;

  // Periodic-update phase geometry; phase_length <= 0 for the other models.
  double phase_length = 0.0;
  double phase_elapsed = 0.0;

  // Monotone counter bumped whenever `loads` changes (per phase under
  // periodic update, per request otherwise). Lets policies cache derived
  // structures (probability vectors, schedules) across requests of a phase.
  std::uint64_t info_version = 0;

  // Liveness the dispatcher knows about (fault-injected runs): alive[i] != 0
  // means server i is believed up. Empty means no fault layer — everyone is
  // alive. Policies must never concentrate probability on known-dead servers.
  std::span<const std::uint8_t> alive{};

  // When non-null, incremented each time a policy had to repair a degenerate
  // probability vector or fall back to uniform-over-alive (fault runs tally
  // this into FaultStats::sanitizer_fixes).
  std::uint64_t* sanitize_events = nullptr;

  // Bucketed view of `loads` (same snapshot, counted by level), or null when
  // the driver runs the vector representation. Policies with a bucketed fast
  // path use it via use_bucketed(); everything else ignores it.
  const sim::LevelIndex* levels = nullptr;

  // True when `levels` already excludes every server the `alive` mask marks
  // down (the health layer retires quarantined servers from the index). Lets
  // the bucketed fast path stay on under churn: the counted representation
  // then IS the candidate set, so no per-server reshaping is needed.
  bool levels_exclude_quarantined = false;

  // Trace sink (obs/trace_sink.h), null when tracing is off. Probabilistic
  // policies report the vector they are about to sample from via
  // trace_probabilities() whenever they (re)build it; sinks are pure
  // observers, so tracing never changes which server is picked.
  obs::TraceSink* trace = nullptr;

  void trace_probabilities(std::span<const double> p) const {
    if (trace != nullptr) trace->on_probabilities(p);
  }

  bool periodic() const { return phase_length > 0.0; }

  // Bucketed fast path applies when a level index is provided and either no
  // liveness mask is active (fault runs reshape probabilities per server,
  // which the counted representation cannot express) or the index already
  // excludes the quarantined servers (health/churn runs).
  bool use_bucketed() const {
    return levels != nullptr && (alive.empty() || levels_exclude_quarantined);
  }

  bool known_dead(int server) const {
    return !alive.empty() && alive[static_cast<std::size_t>(server)] == 0;
  }

  void count_sanitize_event() const {
    if (sanitize_events != nullptr) ++*sanitize_events;
  }

  // Expected number of arrivals between when the information was valid and
  // "now" — the K each LI variant interprets against. Under periodic update
  // Basic LI uses the whole phase (lambda * T); elsewhere lambda * age.
  // Hardened against degraded rate estimates: a non-finite or negative
  // estimate (an estimator that has seen no samples, or overflowed) degrades
  // to K = 0, i.e. "interpret the information as fresh".
  double basic_li_expected_arrivals() const {
    const double k = lambda_total * (periodic() ? phase_length : age);
    return std::isfinite(k) && k >= 0.0 ? k : 0.0;
  }
};

class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  // Chooses a server for one arriving request.
  virtual int select(const DispatchContext& context, sim::Rng& rng) = 0;

  // Human-readable name used in tables ("k_subset:2", "basic_li", ...).
  virtual std::string name() const = 0;

  // How many servers' load values the policy actually reads per request
  // (the paper's "amount of load information"); kAllServers for full-vector
  // policies.
  static constexpr int kAllServers = -1;
  virtual int info_demand() const { return kAllServers; }
};

using PolicyPtr = std::unique_ptr<SelectionPolicy>;

// Samples `k` distinct indices uniformly from [0, n) into `out` (size k).
// Order is not specified. O(k) expected time, no O(n) scratch.
void sample_distinct(int n, int k, sim::Rng& rng, std::span<int> out);

// Repairs a probability vector in place: NaN/inf/negative entries become 0,
// mass on known-dead servers is zeroed, and if no usable mass remains the
// vector becomes uniform over known-alive servers (uniform over all when the
// liveness mask is empty or all-dead). A healthy vector is left bit-identical
// — in particular it is NOT renormalized. Returns true if anything changed.
bool sanitize_probabilities(std::vector<double>& p,
                            std::span<const std::uint8_t> alive);

// Uniform pick over the servers marked alive in `alive` (all `n` servers when
// the mask is empty or marks nobody alive — a dispatcher with no live option
// must still send the job somewhere and take the retry path).
int pick_uniform_alive(std::span<const std::uint8_t> alive, std::size_t n,
                       sim::Rng& rng);

// Cold path shared by the bucketed policies: materializes the per-server
// probability vector implied by per-level masses (each server at level l
// gets masses[l] / count(l)) and reports it to the trace sink. Only called
// when a sink is attached, so the O(n) expansion never taxes untraced runs.
void trace_level_masses(const DispatchContext& context,
                        std::span<const double> level_masses);

}  // namespace stale::policy
