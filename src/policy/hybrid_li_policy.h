// Hybrid Load Interpretation (paper Section 4.1.1): the phase splits into two
// subintervals. During the first, arrivals are distributed proportionally to
// each server's deficit below the *most loaded* server's report (so all
// servers level off together at the end of subinterval one); during the
// second they are uniform. The paper reports its performance falls between
// Basic LI and Aggressive LI under periodic update; we implement it as an
// ablation point.
#pragma once

#include <cstdint>
#include <optional>

#include "core/li_bucketed.h"
#include "core/sampler.h"
#include "policy/policy.h"

namespace stale::policy {

class HybridLiPolicy final : public SelectionPolicy {
 public:
  HybridLiPolicy() = default;

  int select(const DispatchContext& context, sim::Rng& rng) override;
  std::string name() const override { return "hybrid_li"; }

 private:
  int select_bucketed(const DispatchContext& context, sim::Rng& rng);

  std::uint64_t cached_version_ = 0;
  double first_interval_jobs_ = 0.0;
  bool cached_bucketed_ = false;
  std::optional<core::DiscreteSampler> first_sampler_;
  std::optional<core::LevelSampler> first_level_sampler_;
};

}  // namespace stale::policy
