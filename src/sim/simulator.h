// Generic discrete-event simulation kernel.
//
// The figure-generating experiments use the specialized lazy-departure engine
// in queueing/ + driver/ for speed, but this kernel is the general substrate:
// it runs the examples, the update-on-access client engine tests, and the
// cross-engine validation suite. Events at equal timestamps fire in
// scheduling order (stable FIFO tie-break), which keeps runs deterministic.
//
// Event storage is a slab with a free list: each scheduled event occupies a
// reusable slot holding its callback and a generation counter, and the heap
// entry carries (slot, generation). Cancellation bumps the slot's generation,
// so stale heap entries are recognized and discarded when they surface — no
// per-event hash-map node, no allocation on the steady-state hot path (slots
// and the heap's backing vector are reused across events). The pending set
// itself is a 4-ary min-heap: half the levels of a binary heap and
// cache-line-friendly sibling scans, which is where an event loop spends
// most of its time once the hash map is gone.
#pragma once

#include <cstdint>
#include <vector>

#include "check/contracts.h"
#include "obs/trace_sink.h"
#include "sim/event_callback.h"

namespace stale::sim {

class Simulator;

// Event callbacks are held in an allocation-avoiding small-buffer wrapper;
// any callable invocable as fn(Simulator&) converts implicitly, exactly as
// with the std::function it replaced.
using EventFn = EventCallback;

// Opaque handle used to cancel a scheduled event. A default-constructed
// handle (id 0) is never live.
struct EventHandle {
  std::uint64_t id = 0;
};

class Simulator {
 public:
  Simulator() = default;

  double now() const { return now_; }

  // Schedules `fn` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(double when, EventFn fn);

  // Schedules `fn` after `delay` (must be >= 0).
  EventHandle schedule_after(double delay, EventFn fn);

  // Cancels a pending event. Returns false if the event already ran or was
  // cancelled. Cancellation is O(1) (the slot's generation is bumped and the
  // heap entry is skipped when popped).
  bool cancel(EventHandle handle);

  // Runs until the queue is empty. Returns the number of events fired.
  std::uint64_t run();

  // Fires events with time <= `until`, then advances now() to `until`.
  std::uint64_t run_until(double until);

  // Fires the single next event, if any. Returns false when idle.
  bool step();

  std::size_t pending() const { return live_events_; }

  // Attaches a trace sink notified (on_kernel_event) as each event fires.
  // Sinks are pure observers (obs/trace_sink.h); nullptr detaches.
  void set_trace_sink(obs::TraceSink* sink) { trace_ = sink; }

 private:
  struct Entry {
    double when;
    std::uint64_t seq;  // scheduling order, for the FIFO tie-break
    std::uint32_t slot;
    std::uint32_t generation;
    // Min-heap order: earlier time first, FIFO (scheduling order) among ties.
    bool before(const Entry& other) const {
      if (when != other.when) return when < other.when;
      return seq < other.seq;
    }
  };

  struct Slot {
    EventFn fn;
    std::uint32_t generation = 1;  // starts at 1 so a live id is never 0
  };

  // Fires the next event if one exists and (when limit != nullptr) its time
  // is <= *limit. Each event is located with a single heap scan.
  bool fire_next(const double* limit);

  // Marks `slot` dead (generation bump) and returns it to the free list.
  void release_slot(std::uint32_t slot);

  // 4-ary min-heap primitives over heap_.
  void heap_push(const Entry& entry);
  void heap_pop_top();
  void sift_up(std::size_t index);
  void sift_down(std::size_t index);

  // Drops every stale (cancelled) entry and re-heapifies in O(n). Called
  // when stale entries outnumber live ones, so cancel-heavy workloads
  // (timeouts that almost always get cancelled) keep the heap compact
  // instead of sifting dead weight on every pop.
  void compact_heap();

#if STALE_AUDIT_ENABLED
  // Full heap-order check, O(n): every entry sorts at-or-after its parent.
  // Called after the O(n) compactions; fire_next audits the root's children
  // (O(arity)) plus clock monotonicity on every event instead, so audit
  // builds stay near the normal asymptotics.
  void audit_heap_order() const;
#endif

  obs::TraceSink* trace_ = nullptr;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::size_t live_events_ = 0;
  std::size_t stale_in_heap_ = 0;
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace stale::sim
