// Generic discrete-event simulation kernel.
//
// The figure-generating experiments use the specialized lazy-departure engine
// in queueing/ + driver/ for speed, but this kernel is the general substrate:
// it runs the examples, the update-on-access client engine tests, and the
// cross-engine validation suite. Events at equal timestamps fire in
// scheduling order (stable FIFO tie-break), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace stale::sim {

class Simulator;

using EventFn = std::function<void(Simulator&)>;

// Opaque handle used to cancel a scheduled event.
struct EventHandle {
  std::uint64_t id = 0;
};

class Simulator {
 public:
  Simulator() = default;

  double now() const { return now_; }

  // Schedules `fn` at absolute time `when` (must be >= now()).
  EventHandle schedule_at(double when, EventFn fn);

  // Schedules `fn` after `delay` (must be >= 0).
  EventHandle schedule_after(double delay, EventFn fn);

  // Cancels a pending event. Returns false if the event already ran or was
  // cancelled. Cancellation is O(1) (lazy: the callback is dropped and the
  // heap entry is skipped when popped).
  bool cancel(EventHandle handle);

  // Runs until the queue is empty. Returns the number of events fired.
  std::uint64_t run();

  // Fires events with time <= `until`, then advances now() to `until`.
  std::uint64_t run_until(double until);

  // Fires the single next event, if any. Returns false when idle.
  bool step();

  std::size_t pending() const { return callbacks_.size(); }

 private:
  struct Entry {
    double when;
    std::uint64_t id;
    // Min-heap by (when, id): earlier time first, FIFO among ties.
    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  // Pops heap entries until a live one is found. Returns false when empty.
  bool pop_next(Entry& out);

  double now_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<std::uint64_t, EventFn> callbacks_;
};

}  // namespace stale::sim
