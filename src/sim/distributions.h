// Random variate distributions used for service times, inter-arrival gaps and
// information delays. All transformations are implemented explicitly (inverse
// CDF where possible) so results are bit-reproducible across platforms.
#pragma once

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>

#include "sim/rng.h"

namespace stale::sim {

// Type-erased interface. One virtual call per sample is negligible next to the
// rest of the per-job work, and it lets experiment configs pick distributions
// from string specs at run time.
class Distribution {
 public:
  virtual ~Distribution() = default;

  virtual double sample(Rng& rng) const = 0;
  virtual double mean() const = 0;
  // Variance; +inf if undefined/infinite.
  virtual double variance() const = 0;
  virtual std::string describe() const = 0;
};

using DistributionPtr = std::unique_ptr<Distribution>;

// Degenerate distribution: always `value`.
class Deterministic final : public Distribution {
 public:
  explicit Deterministic(double value);

  double sample(Rng&) const override { return value_; }
  double mean() const override { return value_; }
  double variance() const override { return 0.0; }
  std::string describe() const override;

 private:
  double value_;
};

// Exponential with the given mean (rate = 1/mean).
class Exponential final : public Distribution {
 public:
  explicit Exponential(double mean);

  double sample(Rng& rng) const override {
    return -mean_ * std::log(rng.next_double_open0());
  }
  double mean() const override { return mean_; }
  double variance() const override { return mean_ * mean_; }
  std::string describe() const override;

 private:
  double mean_;
};

// Uniform on [lo, hi).
class Uniform final : public Distribution {
 public:
  Uniform(double lo, double hi);

  double sample(Rng& rng) const override {
    return lo_ + (hi_ - lo_) * rng.next_double();
  }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double variance() const override {
    const double w = hi_ - lo_;
    return w * w / 12.0;
  }
  std::string describe() const override;
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
};

// Bounded Pareto on [k, p] with shape alpha (paper Eq. 6):
//   f(x) = alpha * k^alpha * x^{-alpha-1} / (1 - (k/p)^alpha)
// Heavy-tailed but with finite support, used for the Section 5.5 workloads.
class BoundedPareto final : public Distribution {
 public:
  BoundedPareto(double alpha, double k, double p);

  // Constructs a BoundedPareto with the given shape whose mean is `mean` and
  // whose maximum is `max_over_mean * mean`, solving for the lower bound k.
  static BoundedPareto with_mean(double alpha, double mean,
                                 double max_over_mean);

  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;
  std::string describe() const override;

  double alpha() const { return alpha_; }
  double k() const { return k_; }
  double p() const { return p_; }

 private:
  double alpha_;
  double k_;
  double p_;
  double tail_;  // 1 - (k/p)^alpha, cached for sampling
};

// Two-branch hyperexponential: with probability `prob1` exponential(mean1),
// else exponential(mean2). A simple high-variance alternative used in tests
// and ablations.
class Hyperexponential final : public Distribution {
 public:
  Hyperexponential(double prob1, double mean1, double mean2);

  double sample(Rng& rng) const override;
  double mean() const override;
  double variance() const override;
  std::string describe() const override;

 private:
  double prob1_;
  double mean1_;
  double mean2_;
};

// Parses a distribution spec string:
//   "det:V"            Deterministic(V)
//   "exp:MEAN"         Exponential(MEAN)
//   "uniform:LO:HI"    Uniform(LO, HI)
//   "bp:ALPHA:K:P"     BoundedPareto(ALPHA, K, P)
//   "bpmean:ALPHA:MEAN:MAXOVERMEAN"  BoundedPareto::with_mean
//   "hyper:P:M1:M2"    Hyperexponential(P, M1, M2)
// Throws std::invalid_argument on malformed specs.
DistributionPtr parse_distribution(const std::string& spec);

}  // namespace stale::sim
