// Type-erased `void(Simulator&)` callable with a 48-byte inline buffer.
//
// The simulator's event hot path schedules one closure per event;
// std::function's small-buffer optimization (16 bytes in libstdc++) forces a
// heap allocation for anything beyond a couple of captured pointers, which
// put an allocator round-trip on every scheduled event. EventCallback raises
// the inline threshold to 48 bytes — enough for every closure in this
// codebase — and falls back to the heap only for larger or throwing-move
// callables, so steady-state event scheduling allocates nothing.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace stale::sim {

class Simulator;

class EventCallback {
  static constexpr std::size_t kInlineSize = 48;

  template <typename F>
  static constexpr bool kFitsInline =
      sizeof(F) <= kInlineSize && alignof(F) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<F>;

 public:
  EventCallback() noexcept = default;
  EventCallback(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventCallback> &&
                                        std::is_invocable_v<D&, Simulator&>>>
  EventCallback(F&& fn) {  // NOLINT(runtime/explicit)
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(buffer_)) D(std::forward<F>(fn));
      ops_ = inline_ops<D>();
    } else {
      ptr_ = new D(std::forward<F>(fn));
      ops_ = heap_ops<D>();
    }
  }

  EventCallback(const EventCallback& other) {
    if (other.ops_ == nullptr) return;
    if (other.ops_->trivial) {
      std::memcpy(buffer_, other.buffer_, kInlineSize);
      ops_ = other.ops_;
    } else {
      other.ops_->copy(other.object(), *this);
    }
  }

  EventCallback(EventCallback&& other) noexcept { steal(other); }

  EventCallback& operator=(const EventCallback& other) {
    if (this != &other) {
      reset();
      if (other.ops_ != nullptr) {
        if (other.ops_->trivial) {
          std::memcpy(buffer_, other.buffer_, kInlineSize);
          ops_ = other.ops_;
        } else {
          other.ops_->copy(other.object(), *this);
        }
      }
    }
    return *this;
  }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  EventCallback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  ~EventCallback() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()(Simulator& sim) { ops_->invoke(object(), sim); }

 private:
  struct Ops {
    void (*invoke)(void* self, Simulator& sim);
    void (*copy)(const void* self, EventCallback& to);
    // Move-construct into `to` and destroy `self`. Inline storage only.
    void (*relocate)(void* self, void* to) noexcept;
    void (*destroy)(void* self) noexcept;
    bool stores_inline;
    // Trivially-copyable inline callable: copy/relocate are a plain memcpy
    // and destruction is a no-op, so the hot paths skip the indirect calls.
    bool trivial;
  };

  template <typename D>
  static void invoke_object(void* self, Simulator& sim) {
    (*static_cast<D*>(self))(sim);
  }

  template <typename D>
  static void copy_inline(const void* self, EventCallback& to) {
    ::new (static_cast<void*>(to.buffer_)) D(*static_cast<const D*>(self));
    to.ops_ = inline_ops<D>();
  }

  template <typename D>
  static void copy_heap(const void* self, EventCallback& to) {
    to.ptr_ = new D(*static_cast<const D*>(self));
    to.ops_ = heap_ops<D>();
  }

  template <typename D>
  static void relocate_inline(void* self, void* to) noexcept {
    ::new (to) D(std::move(*static_cast<D*>(self)));
    static_cast<D*>(self)->~D();
  }

  template <typename D>
  static void destroy_inline(void* self) noexcept {
    static_cast<D*>(self)->~D();
  }

  template <typename D>
  static void destroy_heap(void* self) noexcept {
    delete static_cast<D*>(self);
  }

  template <typename D>
  static const Ops* inline_ops() {
    static constexpr Ops ops = {&invoke_object<D>, &copy_inline<D>,
                                &relocate_inline<D>, &destroy_inline<D>,
                                /*stores_inline=*/true,
                                std::is_trivially_copyable_v<D> &&
                                    std::is_trivially_destructible_v<D>};
    return &ops;
  }

  template <typename D>
  static const Ops* heap_ops() {
    static constexpr Ops ops = {&invoke_object<D>, &copy_heap<D>, nullptr,
                                &destroy_heap<D>,
                                /*stores_inline=*/false,
                                /*trivial=*/false};
    return &ops;
  }

  void* object() noexcept {
    return ops_->stores_inline ? static_cast<void*>(buffer_) : ptr_;
  }
  const void* object() const noexcept {
    return ops_->stores_inline ? static_cast<const void*>(buffer_) : ptr_;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(object());
      ops_ = nullptr;
    }
  }

  void steal(EventCallback& other) noexcept {
    if (other.ops_ == nullptr) return;
    if (other.ops_->trivial) {
      std::memcpy(buffer_, other.buffer_, kInlineSize);
    } else if (other.ops_->stores_inline) {
      other.ops_->relocate(other.buffer_, buffer_);
    } else {
      ptr_ = other.ptr_;
    }
    ops_ = other.ops_;
    other.ops_ = nullptr;
  }

  union {
    alignas(std::max_align_t) unsigned char buffer_[kInlineSize];
    void* ptr_;
  };
  const Ops* ops_ = nullptr;
};

}  // namespace stale::sim
