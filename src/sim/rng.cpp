#include "sim/rng.h"

namespace stale::sim {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire (2019): multiply-shift with rejection of the biased low range.
  using u128 = unsigned __int128;
  std::uint64_t x = next_u64();
  u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<u128>(x) * static_cast<u128>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

void Rng::long_jump() {
  static constexpr std::uint64_t kJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next_u64();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Rng Rng::split() {
  // Seed a child from our stream; mix through SplitMix64 inside the
  // constructor so consecutive splits are decorrelated.
  return Rng(next_u64());
}

std::uint64_t trial_seed(std::uint64_t base_seed, int trial) {
  SplitMix64 sm(base_seed ^ (0x9e3779b97f4a7c15ULL *
                             static_cast<std::uint64_t>(trial + 1)));
  return sm.next();
}

}  // namespace stale::sim
