#include "sim/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "check/contracts.h"

namespace stale::sim {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
  counts_.resize(bins, 0);
}

void Histogram::add(double x) {
  STALE_DCHECK(!std::isnan(x));
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
  bin = std::min(bin, counts_.size() - 1);  // guard FP edge at hi
  ++counts_[bin];
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + static_cast<double>(bin) * bin_width_;
}

std::string Histogram::render(std::size_t width) const {
  const std::size_t peak =
      counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[b] * width / std::max<std::size_t>(peak, 1);
    os << bin_lo(b) << "\t" << counts_[b] << "\t" << std::string(bar, '#')
       << "\n";
  }
  return os.str();
}

void IntCounter::add(std::size_t value) {
  if (value >= counts_.size()) counts_.resize(value + 1, 0);
  ++counts_[value];
  ++total_;
  STALE_DCHECK(counts_[value] <= total_);
}

std::size_t IntCounter::count(std::size_t value) const {
  return value < counts_.size() ? counts_[value] : 0;
}

std::size_t IntCounter::max_value() const {
  return counts_.empty() ? 0 : counts_.size() - 1;
}

double IntCounter::fraction(std::size_t value) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

}  // namespace stale::sim
