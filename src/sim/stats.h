// Summary statistics used to aggregate per-trial simulation results:
// running mean/variance (Welford), Student-t 90% confidence intervals (the
// interval the paper plots), and percentile/box statistics (used for the
// Bounded Pareto experiments, Figures 10-11).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stale::sim {

// Numerically stable running summary of a stream of observations.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Unbiased sample variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  // Half-width of the two-sided 90% Student-t confidence interval on the
  // mean. 0 for fewer than two observations.
  double ci90_half_width() const;

  // Merges another summary into this one (parallel-friendly combine).
  void merge(const RunningStats& other);

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Two-sided 90% Student-t critical value for `df` degrees of freedom
// (i.e. the 0.95 quantile). Exact table for df <= 30, asymptotic beyond.
double student_t90(std::size_t df);

// Linear-interpolated percentile of `sorted` (ascending), q in [0, 1].
double percentile_sorted(std::span<const double> sorted, double q);

// Five-number summary used for the paper's box plots (Figures 10-11).
struct BoxStats {
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;

  // Computes the summary from an unsorted sample (copies and sorts).
  static BoxStats from_sample(std::span<const double> sample);
};

}  // namespace stale::sim
