// Fixed-bin-width histogram plus a helper for integer-valued samples
// (e.g. queue lengths). Used by tests and the distribution-shape benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace stale::sim {

// Histogram over [lo, hi) with `bins` equal-width bins plus underflow and
// overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  // Fraction of all observations (including under/overflow) in `bin`.
  double fraction(std::size_t bin) const;

  // Left edge of `bin`.
  double bin_lo(std::size_t bin) const;

  // Multi-line ASCII rendering, `width` characters for the largest bar.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

// Counts occurrences of small non-negative integers (index = value).
class IntCounter {
 public:
  void add(std::size_t value);

  std::size_t count(std::size_t value) const;
  std::size_t total() const { return total_; }
  std::size_t max_value() const;
  double fraction(std::size_t value) const;

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace stale::sim
