#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

#include "check/audit.h"

namespace stale::sim {

namespace {

constexpr std::uint64_t pack_id(std::uint32_t slot, std::uint32_t generation) {
  return (static_cast<std::uint64_t>(generation) << 32) | slot;
}

constexpr std::size_t kArity = 4;

}  // namespace

void Simulator::sift_up(std::size_t index) {
  const Entry entry = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / kArity;
    if (!entry.before(heap_[parent])) break;
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = entry;
}

void Simulator::sift_down(std::size_t index) {
  const Entry entry = heap_[index];
  const std::size_t size = heap_.size();
  for (;;) {
    const std::size_t first_child = index * kArity + 1;
    if (first_child >= size) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + kArity, size);
    for (std::size_t child = first_child + 1; child < last_child; ++child) {
      if (heap_[child].before(heap_[best])) best = child;
    }
    if (!heap_[best].before(entry)) break;
    heap_[index] = heap_[best];
    index = best;
  }
  heap_[index] = entry;
}

void Simulator::heap_push(const Entry& entry) {
  heap_.push_back(entry);
  sift_up(heap_.size() - 1);
}

void Simulator::heap_pop_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

EventHandle Simulator::schedule_at(double when, EventFn fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& record = slots_[slot];
  record.fn = std::move(fn);
  heap_push(Entry{when, next_seq_++, slot, record.generation});
  ++live_events_;
  return EventHandle{pack_id(slot, record.generation)};
}

EventHandle Simulator::schedule_after(double delay, EventFn fn) {
  if (delay < 0.0) {
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::release_slot(std::uint32_t slot) {
  STALE_DCHECK(live_events_ > 0);
  Slot& record = slots_[slot];
  record.fn = nullptr;
  ++record.generation;
  free_slots_.push_back(slot);
  --live_events_;
}

void Simulator::compact_heap() {
  std::size_t kept = 0;
  for (const Entry& entry : heap_) {
    if (slots_[entry.slot].generation == entry.generation) {
      heap_[kept++] = entry;
    }
  }
  heap_.resize(kept);
  if (kept > 1) {
    // Floyd heapify: sift down every internal node, bottom-up.
    for (std::size_t i = (kept - 2) / kArity + 1; i-- > 0;) sift_down(i);
  }
  stale_in_heap_ = 0;
  STALE_AUDIT(audit_heap_order());
}

#if STALE_AUDIT_ENABLED
void Simulator::audit_heap_order() const {
  for (std::size_t i = 1; i < heap_.size(); ++i) {
    STALE_ASSERT(!heap_[i].before(heap_[(i - 1) / kArity]),
                 "event heap order violated");
  }
}
#endif

bool Simulator::cancel(EventHandle handle) {
  const auto slot = static_cast<std::uint32_t>(handle.id & 0xffffffffULL);
  const auto generation = static_cast<std::uint32_t>(handle.id >> 32);
  if (generation == 0 || slot >= slots_.size()) return false;
  if (slots_[slot].generation != generation) return false;
  release_slot(slot);  // heap entry becomes stale; skipped when it surfaces
  ++stale_in_heap_;
  STALE_DCHECK(stale_in_heap_ <= heap_.size());
  // Amortized O(1) per cancel: each compaction halves the heap at O(n) cost.
  if (stale_in_heap_ > heap_.size() / 2 && heap_.size() >= 16) compact_heap();
  return true;
}

bool Simulator::fire_next(const double* limit) {
  // Discard stale heap entries (cancelled events) until a live one surfaces.
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (slots_[top.slot].generation == top.generation) break;
    heap_pop_top();
    --stale_in_heap_;
  }
  if (heap_.empty()) return false;
  const Entry top = heap_.front();
  if (limit != nullptr && top.when > *limit) return false;
  STALE_AUDIT(check::audit_monotonic_clock(now_, top.when,
                                           "Simulator::fire_next"));
#if STALE_AUDIT_ENABLED
  // The root must sort at-or-before each of its children, or the entry we
  // are about to fire is not the minimum.
  for (std::size_t child = 1; child < heap_.size() && child <= kArity;
       ++child) {
    STALE_ASSERT(!heap_[child].before(top), "event heap root not minimal");
  }
#endif
  heap_pop_top();
  EventFn fn = std::move(slots_[top.slot].fn);
  release_slot(top.slot);  // before the callback, so it can reuse the slot
  now_ = top.when;
  if (trace_) trace_->on_kernel_event(top.when);
  fn(*this);
  return true;
}

bool Simulator::step() { return fire_next(nullptr); }

std::uint64_t Simulator::run() {
  std::uint64_t fired = 0;
  while (step()) ++fired;
  return fired;
}

std::uint64_t Simulator::run_until(double until) {
  std::uint64_t fired = 0;
  while (fire_next(&until)) ++fired;
  if (until > now_) now_ = until;
  return fired;
}

}  // namespace stale::sim
