#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

namespace stale::sim {

EventHandle Simulator::schedule_at(double when, EventFn fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(fn));
  return EventHandle{id};
}

EventHandle Simulator::schedule_after(double delay, EventFn fn) {
  if (delay < 0.0) {
    throw std::invalid_argument("Simulator::schedule_after: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventHandle handle) {
  return callbacks_.erase(handle.id) > 0;
}

bool Simulator::pop_next(Entry& out) {
  while (!queue_.empty()) {
    Entry top = queue_.top();
    if (callbacks_.count(top.id) > 0) {
      out = top;
      return true;
    }
    queue_.pop();  // cancelled; discard
  }
  return false;
}

bool Simulator::step() {
  Entry entry;
  if (!pop_next(entry)) return false;
  queue_.pop();
  auto it = callbacks_.find(entry.id);
  EventFn fn = std::move(it->second);
  callbacks_.erase(it);
  now_ = entry.when;
  fn(*this);
  return true;
}

std::uint64_t Simulator::run() {
  std::uint64_t fired = 0;
  while (step()) ++fired;
  return fired;
}

std::uint64_t Simulator::run_until(double until) {
  std::uint64_t fired = 0;
  Entry entry;
  while (pop_next(entry) && entry.when <= until) {
    step();
    ++fired;
  }
  if (until > now_) now_ = until;
  return fired;
}

}  // namespace stale::sim
