// Deterministic, platform-independent pseudo-random number generation.
//
// The simulator must produce bit-identical results for a given seed on any
// platform, so we avoid the standard library's distributions (whose algorithms
// are implementation-defined) and implement both the engine (xoshiro256++) and
// the variate transformations ourselves (see distributions.h).
#pragma once

#include <cstdint>
#include <limits>

namespace stale::sim {

// Splitmix64: used to expand a single 64-bit seed into engine state.
// Passes through every 64-bit value exactly once over its period.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256++ engine (Blackman & Vigna). Fast, high quality, 2^256-1 period.
// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Seeds the four state words from `seed` via SplitMix64, as the xoshiro
  // authors recommend. A zero seed is fine (SplitMix64 never emits all-zero
  // state four times in a row).
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64();

  // Uniform double in [0, 1) with 53 bits of precision.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in (0, 1] — safe as input to -log(u).
  double next_double_open0() { return 1.0 - next_double(); }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  // method: unbiased and branch-light.
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Long-jump: advances the engine by 2^192 steps, giving an independent
  // stream. Used to derive per-trial / per-component streams from one seed.
  void long_jump();

  // Convenience: a new engine seeded independently from this one.
  Rng split();

 private:
  std::uint64_t s_[4];
};

// Derives the seed for trial `trial` of an experiment from a base seed.
// Distinct trials get decorrelated streams even for adjacent trial numbers.
std::uint64_t trial_seed(std::uint64_t base_seed, int trial);

}  // namespace stale::sim
