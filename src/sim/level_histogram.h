// Bucketed (counted) load representation: the paper's LI math only ever
// depends on *how many servers sit at each queue length*, never on which
// ones, so the level-occupancy histogram is a sufficient statistic for every
// dispatch kernel (Eqs. 2-5). Maintaining it incrementally turns the O(n)
// per-decision scans into O(#levels) — what makes n = 10^6 runs feasible
// (ROADMAP item 2).
//
// LevelHistogram: count of servers at each queue-length level, with O(1)
// add/remove/move and exact integer aggregates (total, sum of levels, sum of
// squared levels — all int64, so derived means/stddevs are deterministic and
// bit-identical to summing the raw vector).
//
// LevelIndex: a LevelHistogram plus per-level member lists, supporting O(1)
// update(server, new_level) and uniform picks within a level / within the
// least-loaded prefix — the second stage of the two-stage samplers the
// bucketed policies use.
//
// Both are plain deterministic containers (D-rules: no unordered containers,
// no host state); picks draw only from sim::Rng.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/rng.h"

namespace stale::sim {

class LevelHistogram {
 public:
  LevelHistogram() = default;

  // Rebuilds the histogram from a raw load vector. O(n).
  void assign(std::span<const int> loads);

  void clear();

  // O(1) amortized (min/max maintenance scans only over emptied levels).
  void add(int level);
  void remove(int level);
  void move(int from_level, int to_level) {
    if (from_level == to_level) return;
    remove(from_level);
    add(to_level);
  }

  std::int64_t count(int level) const {
    return level >= 0 && level < static_cast<int>(counts_.size())
               ? counts_[static_cast<std::size_t>(level)]
               : 0;
  }
  // Servers at levels <= `level` (clamped; `level` < 0 gives 0). O(#levels).
  std::int64_t count_at_or_below(int level) const;

  // Dense counts indexed by level; may carry trailing zeros past max_level().
  std::span<const std::int64_t> counts() const { return counts_; }

  std::int64_t total() const { return total_; }
  bool empty() const { return total_ == 0; }

  // Lowest / highest level with a nonzero count; -1 when empty.
  int min_level() const { return total_ == 0 ? -1 : min_level_; }
  int max_level() const { return total_ == 0 ? -1 : max_level_; }

  // Exact integer aggregates: sum of levels and sum of squared levels over
  // all members. Both fit int64 for any feasible simulation (n <= 2^31,
  // levels bounded by jobs dispatched).
  std::int64_t level_sum() const { return level_sum_; }
  std::int64_t level_sq_sum() const { return level_sq_sum_; }

  // Population mean / stddev over members. Computed from the exact integer
  // sums, so they equal (bit for bit) the same formulas over the raw vector.
  double mean() const;
  double stddev() const;

 private:
  std::vector<std::int64_t> counts_;  // counts_[level], dense from 0
  std::int64_t total_ = 0;
  std::int64_t level_sum_ = 0;
  std::int64_t level_sq_sum_ = 0;
  int min_level_ = 0;
  int max_level_ = -1;
};

class LevelIndex {
 public:
  LevelIndex() = default;

  // Rebuilds from a raw load vector: histogram plus per-level member lists
  // (members of a level are kept in unspecified order; picks are uniform
  // regardless). O(n); reuses bucket capacity across rebuilds. When the
  // vector has the same size as the previous build, the retirement mask
  // survives the rebuild (retired servers keep their recorded level but stay
  // out of the histogram and buckets); a size change clears it.
  void build(std::span<const int> loads);

  // Moves one server to a new level. O(1) (swap-remove from the old bucket).
  // On a retired server this only records the level for a later readmit().
  void update(int server, int new_level);

  // Quarantine support (src/health/): a retired server leaves the histogram
  // and its level bucket — every pick_* and aggregate excludes it — while
  // its last known level is remembered so readmit() can restore it in O(1).
  void retire(int server);
  void readmit(int server);
  bool retired(int server) const {
    return !retired_.empty() && retired_[static_cast<std::size_t>(server)] != 0;
  }
  int retired_count() const { return retired_count_; }

  const LevelHistogram& histogram() const { return hist_; }
  int num_servers() const { return static_cast<int>(level_.size()); }
  int level_of(int server) const {
    return level_[static_cast<std::size_t>(server)];
  }

  // Uniform member of a nonempty level. One rng draw.
  int pick_uniform_in_level(int level, Rng& rng) const;

  // Uniform member among the `count` servers of the least-loaded levels
  // (count must be class-aligned-or-less: 1 <= count <= total). One rng
  // draw plus an O(#levels) walk.
  int pick_uniform_in_prefix(std::int64_t count, Rng& rng) const;

  // Uniform member among all servers at levels <= `level` (there must be at
  // least one). One rng draw plus an O(#levels) walk.
  int pick_uniform_at_or_below(int level, Rng& rng) const;

 private:
  LevelHistogram hist_;
  std::vector<std::vector<int>> members_;  // members_[level] = server ids
  std::vector<int> level_;                 // level_[server]
  std::vector<int> pos_;                   // index of server in its bucket
  std::vector<std::uint8_t> retired_;      // 1 = out of hist_ and buckets
  int retired_count_ = 0;
};

}  // namespace stale::sim
