#include "sim/distributions.h"

#include <sstream>
#include <vector>

#include "check/contracts.h"

namespace stale::sim {

namespace {

void require(bool ok, const char* message) {
  if (!ok) throw std::invalid_argument(message);
}

}  // namespace

Deterministic::Deterministic(double value) : value_(value) {
  require(value >= 0.0, "Deterministic: value must be >= 0");
}

std::string Deterministic::describe() const {
  std::ostringstream os;
  os << "det:" << value_;
  return os.str();
}

Exponential::Exponential(double mean) : mean_(mean) {
  require(mean > 0.0, "Exponential: mean must be > 0");
}

std::string Exponential::describe() const {
  std::ostringstream os;
  os << "exp:" << mean_;
  return os.str();
}

Uniform::Uniform(double lo, double hi) : lo_(lo), hi_(hi) {
  require(lo >= 0.0 && hi >= lo, "Uniform: need 0 <= lo <= hi");
}

std::string Uniform::describe() const {
  std::ostringstream os;
  os << "uniform:" << lo_ << ":" << hi_;
  return os.str();
}

BoundedPareto::BoundedPareto(double alpha, double k, double p)
    : alpha_(alpha), k_(k), p_(p), tail_(1.0 - std::pow(k / p, alpha)) {
  require(alpha > 0.0, "BoundedPareto: alpha must be > 0");
  require(k > 0.0 && p > k, "BoundedPareto: need 0 < k < p");
}

BoundedPareto BoundedPareto::with_mean(double alpha, double mean,
                                       double max_over_mean) {
  require(mean > 0.0 && max_over_mean > 1.0,
          "BoundedPareto::with_mean: need mean > 0 and max_over_mean > 1");
  const double p = max_over_mean * mean;
  // mean(k) is continuous and strictly increasing in k on (0, p); bisect.
  double lo = p * 1e-12;
  double hi = p * (1.0 - 1e-12);
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (BoundedPareto(alpha, mid, p).mean() < mean) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const BoundedPareto fitted(alpha, 0.5 * (lo + hi), p);
  STALE_DCHECK(std::abs(fitted.mean() - mean) <= 1e-6 * mean);
  return fitted;
}

double BoundedPareto::sample(Rng& rng) const {
  // Inverse CDF: F(x) = (1 - (k/x)^alpha) / tail  =>
  //   x = k * (1 - u * tail)^(-1/alpha)
  const double u = rng.next_double();
  return k_ * std::pow(1.0 - u * tail_, -1.0 / alpha_);
}

double BoundedPareto::mean() const {
  // E[X] = integral_k^p x f(x) dx.
  if (alpha_ == 1.0) {
    return k_ / tail_ * std::log(p_ / k_) * 1.0;
  }
  const double c = alpha_ * std::pow(k_, alpha_) / tail_;
  return c * (std::pow(k_, 1.0 - alpha_) - std::pow(p_, 1.0 - alpha_)) /
         (alpha_ - 1.0);
}

double BoundedPareto::variance() const {
  // E[X^2] via the same moment integral with exponent 2.
  double second;
  if (alpha_ == 2.0) {
    second = alpha_ * std::pow(k_, alpha_) / tail_ * std::log(p_ / k_);
  } else {
    const double c = alpha_ * std::pow(k_, alpha_) / tail_;
    second = c * (std::pow(k_, 2.0 - alpha_) - std::pow(p_, 2.0 - alpha_)) /
             (alpha_ - 2.0);
  }
  const double m = mean();
  return second - m * m;
}

std::string BoundedPareto::describe() const {
  std::ostringstream os;
  os << "bp:" << alpha_ << ":" << k_ << ":" << p_;
  return os.str();
}

Hyperexponential::Hyperexponential(double prob1, double mean1, double mean2)
    : prob1_(prob1), mean1_(mean1), mean2_(mean2) {
  require(prob1 >= 0.0 && prob1 <= 1.0, "Hyperexponential: prob1 in [0,1]");
  require(mean1 > 0.0 && mean2 > 0.0, "Hyperexponential: means must be > 0");
}

double Hyperexponential::sample(Rng& rng) const {
  const double mean = rng.next_double() < prob1_ ? mean1_ : mean2_;
  return -mean * std::log(rng.next_double_open0());
}

double Hyperexponential::mean() const {
  return prob1_ * mean1_ + (1.0 - prob1_) * mean2_;
}

double Hyperexponential::variance() const {
  const double second =
      2.0 * (prob1_ * mean1_ * mean1_ + (1.0 - prob1_) * mean2_ * mean2_);
  const double m = mean();
  return second - m * m;
}

std::string Hyperexponential::describe() const {
  std::ostringstream os;
  os << "hyper:" << prob1_ << ":" << mean1_ << ":" << mean2_;
  return os.str();
}

DistributionPtr parse_distribution(const std::string& spec) {
  std::vector<std::string> parts;
  std::string token;
  std::istringstream in(spec);
  while (std::getline(in, token, ':')) parts.push_back(token);
  require(!parts.empty(), "parse_distribution: empty spec");

  auto num = [&](std::size_t i) -> double {
    require(i < parts.size(), "parse_distribution: missing parameter");
    std::size_t pos = 0;
    const double v = std::stod(parts[i], &pos);
    require(pos == parts[i].size(), "parse_distribution: bad number");
    return v;
  };

  const std::string& kind = parts[0];
  if (kind == "det") {
    require(parts.size() == 2, "det takes 1 parameter");
    return std::make_unique<Deterministic>(num(1));
  }
  if (kind == "exp") {
    require(parts.size() == 2, "exp takes 1 parameter");
    return std::make_unique<Exponential>(num(1));
  }
  if (kind == "uniform") {
    require(parts.size() == 3, "uniform takes 2 parameters");
    return std::make_unique<Uniform>(num(1), num(2));
  }
  if (kind == "bp") {
    require(parts.size() == 4, "bp takes 3 parameters");
    return std::make_unique<BoundedPareto>(num(1), num(2), num(3));
  }
  if (kind == "bpmean") {
    require(parts.size() == 4, "bpmean takes 3 parameters");
    return std::make_unique<BoundedPareto>(
        BoundedPareto::with_mean(num(1), num(2), num(3)));
  }
  if (kind == "hyper") {
    require(parts.size() == 4, "hyper takes 3 parameters");
    return std::make_unique<Hyperexponential>(num(1), num(2), num(3));
  }
  throw std::invalid_argument("parse_distribution: unknown kind '" + kind +
                              "'");
}

}  // namespace stale::sim
