#include "sim/level_histogram.h"

#include <cmath>
#include <stdexcept>

#include "check/contracts.h"

namespace stale::sim {

void LevelHistogram::assign(std::span<const int> loads) {
  clear();
  for (int level : loads) add(level);
  STALE_DCHECK(total_ == static_cast<std::int64_t>(loads.size()));
}

void LevelHistogram::clear() {
  counts_.assign(counts_.size(), 0);  // keep capacity for rebuilds
  total_ = 0;
  level_sum_ = 0;
  level_sq_sum_ = 0;
  min_level_ = 0;
  max_level_ = -1;
  STALE_DCHECK(empty());
}

void LevelHistogram::add(int level) {
  if (level < 0) {
    throw std::invalid_argument("LevelHistogram: negative level");
  }
  if (level >= static_cast<int>(counts_.size())) {
    counts_.resize(static_cast<std::size_t>(level) + 1, 0);
  }
  if (total_ == 0) {
    min_level_ = level;
    max_level_ = level;
  } else {
    if (level < min_level_) min_level_ = level;
    if (level > max_level_) max_level_ = level;
  }
  ++counts_[static_cast<std::size_t>(level)];
  ++total_;
  level_sum_ += level;
  level_sq_sum_ += static_cast<std::int64_t>(level) * level;
  STALE_DCHECK(min_level_ <= level && level <= max_level_);
  STALE_DCHECK(counts_[static_cast<std::size_t>(level)] <= total_);
}

void LevelHistogram::remove(int level) {
  if (count(level) <= 0) {
    throw std::invalid_argument("LevelHistogram: remove from empty level");
  }
  --counts_[static_cast<std::size_t>(level)];
  --total_;
  level_sum_ -= level;
  level_sq_sum_ -= static_cast<std::int64_t>(level) * level;
  if (total_ == 0) {
    min_level_ = 0;
    max_level_ = -1;
    return;
  }
  while (counts_[static_cast<std::size_t>(min_level_)] == 0) ++min_level_;
  while (counts_[static_cast<std::size_t>(max_level_)] == 0) --max_level_;
  STALE_DCHECK(min_level_ <= max_level_ && total_ > 0);
}

std::int64_t LevelHistogram::count_at_or_below(int level) const {
  if (total_ == 0 || level < min_level_) return 0;
  if (level >= max_level_) return total_;
  std::int64_t below = 0;
  for (int l = min_level_; l <= level; ++l) {
    below += counts_[static_cast<std::size_t>(l)];
  }
  return below;
}

double LevelHistogram::mean() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(level_sum_) / static_cast<double>(total_);
}

double LevelHistogram::stddev() const {
  if (total_ == 0) return 0.0;
  const double n = static_cast<double>(total_);
  const double mean_value = static_cast<double>(level_sum_) / n;
  const double variance =
      static_cast<double>(level_sq_sum_) / n - mean_value * mean_value;
  return std::sqrt(variance > 0.0 ? variance : 0.0);
}

void LevelIndex::build(std::span<const int> loads) {
  if (retired_.size() != loads.size()) {
    retired_.assign(loads.size(), 0);
    retired_count_ = 0;
  }
  hist_.clear();
  for (std::vector<int>& bucket : members_) bucket.clear();
  level_.resize(loads.size());
  pos_.resize(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const int level = loads[i];
    level_[i] = level;
    if (retired_[i] != 0) {
      pos_[i] = -1;
      continue;
    }
    hist_.add(level);
    if (level >= static_cast<int>(members_.size())) {
      members_.resize(static_cast<std::size_t>(level) + 1);
    }
    std::vector<int>& bucket = members_[static_cast<std::size_t>(level)];
    pos_[i] = static_cast<int>(bucket.size());
    bucket.push_back(static_cast<int>(i));
  }
  STALE_DCHECK(hist_.total() + retired_count_ ==
               static_cast<std::int64_t>(loads.size()));
}

void LevelIndex::update(int server, int new_level) {
  const auto s = static_cast<std::size_t>(server);
  if (!retired_.empty() && retired_[s] != 0) {
    if (new_level < 0) {
      throw std::invalid_argument("LevelIndex: negative level");
    }
    level_[s] = new_level;  // remembered for readmit()
    return;
  }
  const int old_level = level_[s];
  if (old_level == new_level) return;
  if (new_level < 0) {
    throw std::invalid_argument("LevelIndex: negative level");
  }
  std::vector<int>& from = members_[static_cast<std::size_t>(old_level)];
  const int moved = from.back();
  const int hole = pos_[s];
  from[static_cast<std::size_t>(hole)] = moved;
  pos_[static_cast<std::size_t>(moved)] = hole;
  from.pop_back();
  if (new_level >= static_cast<int>(members_.size())) {
    members_.resize(static_cast<std::size_t>(new_level) + 1);
  }
  std::vector<int>& to = members_[static_cast<std::size_t>(new_level)];
  pos_[s] = static_cast<int>(to.size());
  to.push_back(server);
  level_[s] = new_level;
  hist_.move(old_level, new_level);
  STALE_DCHECK(to[static_cast<std::size_t>(pos_[s])] == server);
}

void LevelIndex::retire(int server) {
  const auto s = static_cast<std::size_t>(server);
  if (server < 0 || s >= level_.size()) {
    throw std::invalid_argument("LevelIndex: retire out of range");
  }
  if (retired_.size() != level_.size()) retired_.resize(level_.size(), 0);
  if (retired_[s] != 0) {
    throw std::invalid_argument("LevelIndex: retire of retired server");
  }
  const int level = level_[s];
  std::vector<int>& bucket = members_[static_cast<std::size_t>(level)];
  const int moved = bucket.back();
  const int hole = pos_[s];
  bucket[static_cast<std::size_t>(hole)] = moved;
  pos_[static_cast<std::size_t>(moved)] = hole;
  bucket.pop_back();
  hist_.remove(level);
  retired_[s] = 1;
  pos_[s] = -1;
  ++retired_count_;
  STALE_DCHECK(retired_count_ <= static_cast<int>(level_.size()));
}

void LevelIndex::readmit(int server) {
  const auto s = static_cast<std::size_t>(server);
  if (server < 0 || s >= level_.size()) {
    throw std::invalid_argument("LevelIndex: readmit out of range");
  }
  if (retired_.size() != level_.size() || retired_[s] == 0) {
    throw std::invalid_argument("LevelIndex: readmit of live server");
  }
  const int level = level_[s];
  if (level >= static_cast<int>(members_.size())) {
    members_.resize(static_cast<std::size_t>(level) + 1);
  }
  std::vector<int>& bucket = members_[static_cast<std::size_t>(level)];
  pos_[s] = static_cast<int>(bucket.size());
  bucket.push_back(server);
  hist_.add(level);
  retired_[s] = 0;
  --retired_count_;
  STALE_DCHECK(retired_count_ >= 0);
  STALE_DCHECK(bucket[static_cast<std::size_t>(pos_[s])] == server);
}

int LevelIndex::pick_uniform_in_level(int level, Rng& rng) const {
  const std::int64_t size = hist_.count(level);
  if (size <= 0) {
    throw std::invalid_argument("LevelIndex: pick from empty level");
  }
  const auto pick = rng.next_below(static_cast<std::uint64_t>(size));
  return members_[static_cast<std::size_t>(level)][pick];
}

int LevelIndex::pick_uniform_in_prefix(std::int64_t count, Rng& rng) const {
  if (count < 1 || count > hist_.total()) {
    throw std::invalid_argument("LevelIndex: bad prefix count");
  }
  auto pick = static_cast<std::int64_t>(
      rng.next_below(static_cast<std::uint64_t>(count)));
  for (int level = hist_.min_level(); level <= hist_.max_level(); ++level) {
    const std::int64_t size = hist_.count(level);
    if (pick < size) {
      return members_[static_cast<std::size_t>(level)]
                     [static_cast<std::size_t>(pick)];
    }
    pick -= size;
  }
  throw std::logic_error("LevelIndex: prefix walk overran the histogram");
}

int LevelIndex::pick_uniform_at_or_below(int level, Rng& rng) const {
  const std::int64_t size = hist_.count_at_or_below(level);
  if (size <= 0) {
    throw std::invalid_argument("LevelIndex: no members at or below level");
  }
  auto pick = static_cast<std::int64_t>(
      rng.next_below(static_cast<std::uint64_t>(size)));
  for (int l = hist_.min_level(); l <= level; ++l) {
    const std::int64_t bucket = hist_.count(l);
    if (pick < bucket) {
      return members_[static_cast<std::size_t>(l)]
                     [static_cast<std::size_t>(pick)];
    }
    pick -= bucket;
  }
  throw std::logic_error("LevelIndex: at-or-below walk overran the histogram");
}

}  // namespace stale::sim
