#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "check/contracts.h"

namespace stale::sim {

void RunningStats::add(double x) {
  STALE_DCHECK(!std::isnan(x));
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci90_half_width() const {
  if (count_ < 2) return 0.0;
  const double se = stddev() / std::sqrt(static_cast<double>(count_));
  return student_t90(count_ - 1) * se;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  STALE_DCHECK(count_ > 0 && min_ <= max_);
}

double student_t90(std::size_t df) {
  // 0.95 one-sided quantiles of Student's t (two-sided 90% interval).
  static constexpr double kTable[] = {
      6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
      1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
      1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697};
  if (df == 0) return 0.0;
  if (df <= 30) return kTable[df - 1];
  if (df <= 60) {
    // Interpolate between t(30)=1.697 and t(60)=1.671.
    const double frac = static_cast<double>(df - 30) / 30.0;
    return 1.697 + frac * (1.671 - 1.697);
  }
  if (df <= 120) {
    const double frac = static_cast<double>(df - 60) / 60.0;
    return 1.671 + frac * (1.658 - 1.671);
  }
  return 1.645;  // normal limit
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("percentile: empty sample");
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] + frac * (sorted[idx + 1] - sorted[idx]);
}

BoxStats BoxStats::from_sample(std::span<const double> sample) {
  if (sample.empty()) throw std::invalid_argument("BoxStats: empty sample");
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const BoxStats box{
      .min = sorted.front(),
      .p25 = percentile_sorted(sorted, 0.25),
      .median = percentile_sorted(sorted, 0.50),
      .p75 = percentile_sorted(sorted, 0.75),
      .max = sorted.back(),
  };
  STALE_DCHECK(box.min <= box.p25 && box.p25 <= box.median &&
               box.median <= box.p75 && box.p75 <= box.max);
  return box;
}

}  // namespace stale::sim
