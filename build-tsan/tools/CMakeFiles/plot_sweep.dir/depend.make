# Empty dependencies file for plot_sweep.
# This may be replaced when dependencies are built.
