file(REMOVE_RECURSE
  "CMakeFiles/plot_sweep.dir/plot_sweep.cpp.o"
  "CMakeFiles/plot_sweep.dir/plot_sweep.cpp.o.d"
  "plot_sweep"
  "plot_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plot_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
