file(REMOVE_RECURSE
  "CMakeFiles/staleload_cli.dir/staleload_sim.cpp.o"
  "CMakeFiles/staleload_cli.dir/staleload_sim.cpp.o.d"
  "staleload_sim"
  "staleload_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleload_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
