# Empty compiler generated dependencies file for staleload_cli.
# This may be replaced when dependencies are built.
