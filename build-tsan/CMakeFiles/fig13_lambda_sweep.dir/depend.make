# Empty dependencies file for fig13_lambda_sweep.
# This may be replaced when dependencies are built.
