file(REMOVE_RECURSE
  "CMakeFiles/fig13_lambda_sweep.dir/bench/fig13_lambda_sweep.cpp.o"
  "CMakeFiles/fig13_lambda_sweep.dir/bench/fig13_lambda_sweep.cpp.o.d"
  "bench/fig13_lambda_sweep"
  "bench/fig13_lambda_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_lambda_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
