# Empty dependencies file for fig03_periodic_light_load.
# This may be replaced when dependencies are built.
