file(REMOVE_RECURSE
  "CMakeFiles/fig03_periodic_light_load.dir/bench/fig03_periodic_light_load.cpp.o"
  "CMakeFiles/fig03_periodic_light_load.dir/bench/fig03_periodic_light_load.cpp.o.d"
  "bench/fig03_periodic_light_load"
  "bench/fig03_periodic_light_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_periodic_light_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
