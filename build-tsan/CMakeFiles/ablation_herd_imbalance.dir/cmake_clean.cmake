file(REMOVE_RECURSE
  "CMakeFiles/ablation_herd_imbalance.dir/bench/ablation_herd_imbalance.cpp.o"
  "CMakeFiles/ablation_herd_imbalance.dir/bench/ablation_herd_imbalance.cpp.o.d"
  "bench/ablation_herd_imbalance"
  "bench/ablation_herd_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_herd_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
