# Empty compiler generated dependencies file for ablation_herd_imbalance.
# This may be replaced when dependencies are built.
