file(REMOVE_RECURSE
  "CMakeFiles/fig04_periodic_n100.dir/bench/fig04_periodic_n100.cpp.o"
  "CMakeFiles/fig04_periodic_n100.dir/bench/fig04_periodic_n100.cpp.o.d"
  "bench/fig04_periodic_n100"
  "bench/fig04_periodic_n100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_periodic_n100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
