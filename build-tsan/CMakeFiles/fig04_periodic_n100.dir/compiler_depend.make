# Empty compiler generated dependencies file for fig04_periodic_n100.
# This may be replaced when dependencies are built.
