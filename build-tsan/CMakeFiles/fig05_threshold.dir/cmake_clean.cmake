file(REMOVE_RECURSE
  "CMakeFiles/fig05_threshold.dir/bench/fig05_threshold.cpp.o"
  "CMakeFiles/fig05_threshold.dir/bench/fig05_threshold.cpp.o.d"
  "bench/fig05_threshold"
  "bench/fig05_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
