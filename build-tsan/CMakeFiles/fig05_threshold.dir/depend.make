# Empty dependencies file for fig05_threshold.
# This may be replaced when dependencies are built.
