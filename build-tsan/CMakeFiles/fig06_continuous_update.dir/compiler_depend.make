# Empty compiler generated dependencies file for fig06_continuous_update.
# This may be replaced when dependencies are built.
