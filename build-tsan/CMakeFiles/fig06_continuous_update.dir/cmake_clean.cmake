file(REMOVE_RECURSE
  "CMakeFiles/fig06_continuous_update.dir/bench/fig06_continuous_update.cpp.o"
  "CMakeFiles/fig06_continuous_update.dir/bench/fig06_continuous_update.cpp.o.d"
  "bench/fig06_continuous_update"
  "bench/fig06_continuous_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_continuous_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
