# Empty dependencies file for ablation_fluid_vs_simulation.
# This may be replaced when dependencies are built.
