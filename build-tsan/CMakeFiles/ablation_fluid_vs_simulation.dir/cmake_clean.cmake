file(REMOVE_RECURSE
  "CMakeFiles/ablation_fluid_vs_simulation.dir/bench/ablation_fluid_vs_simulation.cpp.o"
  "CMakeFiles/ablation_fluid_vs_simulation.dir/bench/ablation_fluid_vs_simulation.cpp.o.d"
  "bench/ablation_fluid_vs_simulation"
  "bench/ablation_fluid_vs_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fluid_vs_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
