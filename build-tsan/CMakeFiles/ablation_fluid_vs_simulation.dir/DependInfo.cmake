
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_fluid_vs_simulation.cpp" "CMakeFiles/ablation_fluid_vs_simulation.dir/bench/ablation_fluid_vs_simulation.cpp.o" "gcc" "CMakeFiles/ablation_fluid_vs_simulation.dir/bench/ablation_fluid_vs_simulation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/staleload_driver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_policy.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_loadinfo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_queueing.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
