file(REMOVE_RECURSE
  "CMakeFiles/fig11_pareto_alpha15.dir/bench/fig11_pareto_alpha15.cpp.o"
  "CMakeFiles/fig11_pareto_alpha15.dir/bench/fig11_pareto_alpha15.cpp.o.d"
  "bench/fig11_pareto_alpha15"
  "bench/fig11_pareto_alpha15.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_pareto_alpha15.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
