# Empty compiler generated dependencies file for fig11_pareto_alpha15.
# This may be replaced when dependencies are built.
