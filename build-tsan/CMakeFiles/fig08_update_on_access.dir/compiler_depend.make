# Empty compiler generated dependencies file for fig08_update_on_access.
# This may be replaced when dependencies are built.
