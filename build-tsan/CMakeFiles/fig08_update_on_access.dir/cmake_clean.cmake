file(REMOVE_RECURSE
  "CMakeFiles/fig08_update_on_access.dir/bench/fig08_update_on_access.cpp.o"
  "CMakeFiles/fig08_update_on_access.dir/bench/fig08_update_on_access.cpp.o.d"
  "bench/fig08_update_on_access"
  "bench/fig08_update_on_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_update_on_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
