file(REMOVE_RECURSE
  "CMakeFiles/ablation_tail_latency.dir/bench/ablation_tail_latency.cpp.o"
  "CMakeFiles/ablation_tail_latency.dir/bench/ablation_tail_latency.cpp.o.d"
  "bench/ablation_tail_latency"
  "bench/ablation_tail_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tail_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
