file(REMOVE_RECURSE
  "CMakeFiles/fig01_subset_distribution.dir/bench/fig01_subset_distribution.cpp.o"
  "CMakeFiles/fig01_subset_distribution.dir/bench/fig01_subset_distribution.cpp.o.d"
  "bench/fig01_subset_distribution"
  "bench/fig01_subset_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_subset_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
