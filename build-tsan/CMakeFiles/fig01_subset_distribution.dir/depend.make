# Empty dependencies file for fig01_subset_distribution.
# This may be replaced when dependencies are built.
