file(REMOVE_RECURSE
  "CMakeFiles/ablation_hybrid_li.dir/bench/ablation_hybrid_li.cpp.o"
  "CMakeFiles/ablation_hybrid_li.dir/bench/ablation_hybrid_li.cpp.o.d"
  "bench/ablation_hybrid_li"
  "bench/ablation_hybrid_li.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid_li.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
