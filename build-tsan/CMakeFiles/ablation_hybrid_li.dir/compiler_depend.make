# Empty compiler generated dependencies file for ablation_hybrid_li.
# This may be replaced when dependencies are built.
