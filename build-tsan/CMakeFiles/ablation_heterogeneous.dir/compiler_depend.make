# Empty compiler generated dependencies file for ablation_heterogeneous.
# This may be replaced when dependencies are built.
