file(REMOVE_RECURSE
  "CMakeFiles/ablation_heterogeneous.dir/bench/ablation_heterogeneous.cpp.o"
  "CMakeFiles/ablation_heterogeneous.dir/bench/ablation_heterogeneous.cpp.o.d"
  "bench/ablation_heterogeneous"
  "bench/ablation_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
