file(REMOVE_RECURSE
  "CMakeFiles/fig09_bursty_arrivals.dir/bench/fig09_bursty_arrivals.cpp.o"
  "CMakeFiles/fig09_bursty_arrivals.dir/bench/fig09_bursty_arrivals.cpp.o.d"
  "bench/fig09_bursty_arrivals"
  "bench/fig09_bursty_arrivals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_bursty_arrivals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
