# Empty compiler generated dependencies file for fig09_bursty_arrivals.
# This may be replaced when dependencies are built.
