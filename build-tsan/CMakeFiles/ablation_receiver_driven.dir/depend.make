# Empty dependencies file for ablation_receiver_driven.
# This may be replaced when dependencies are built.
