file(REMOVE_RECURSE
  "CMakeFiles/ablation_receiver_driven.dir/bench/ablation_receiver_driven.cpp.o"
  "CMakeFiles/ablation_receiver_driven.dir/bench/ablation_receiver_driven.cpp.o.d"
  "bench/ablation_receiver_driven"
  "bench/ablation_receiver_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_receiver_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
