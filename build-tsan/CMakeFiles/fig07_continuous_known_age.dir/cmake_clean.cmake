file(REMOVE_RECURSE
  "CMakeFiles/fig07_continuous_known_age.dir/bench/fig07_continuous_known_age.cpp.o"
  "CMakeFiles/fig07_continuous_known_age.dir/bench/fig07_continuous_known_age.cpp.o.d"
  "bench/fig07_continuous_known_age"
  "bench/fig07_continuous_known_age.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_continuous_known_age.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
