# Empty compiler generated dependencies file for fig07_continuous_known_age.
# This may be replaced when dependencies are built.
