file(REMOVE_RECURSE
  "CMakeFiles/fig14_li_subset.dir/bench/fig14_li_subset.cpp.o"
  "CMakeFiles/fig14_li_subset.dir/bench/fig14_li_subset.cpp.o.d"
  "bench/fig14_li_subset"
  "bench/fig14_li_subset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_li_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
