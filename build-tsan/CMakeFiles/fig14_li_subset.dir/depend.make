# Empty dependencies file for fig14_li_subset.
# This may be replaced when dependencies are built.
