# Empty dependencies file for ablation_rate_estimators.
# This may be replaced when dependencies are built.
