file(REMOVE_RECURSE
  "CMakeFiles/ablation_rate_estimators.dir/bench/ablation_rate_estimators.cpp.o"
  "CMakeFiles/ablation_rate_estimators.dir/bench/ablation_rate_estimators.cpp.o.d"
  "bench/ablation_rate_estimators"
  "bench/ablation_rate_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rate_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
