file(REMOVE_RECURSE
  "CMakeFiles/fig02_periodic_update.dir/bench/fig02_periodic_update.cpp.o"
  "CMakeFiles/fig02_periodic_update.dir/bench/fig02_periodic_update.cpp.o.d"
  "bench/fig02_periodic_update"
  "bench/fig02_periodic_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_periodic_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
