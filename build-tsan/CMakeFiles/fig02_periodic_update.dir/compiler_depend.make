# Empty compiler generated dependencies file for fig02_periodic_update.
# This may be replaced when dependencies are built.
