# Empty compiler generated dependencies file for fig12_rate_misestimation.
# This may be replaced when dependencies are built.
