file(REMOVE_RECURSE
  "CMakeFiles/fig12_rate_misestimation.dir/bench/fig12_rate_misestimation.cpp.o"
  "CMakeFiles/fig12_rate_misestimation.dir/bench/fig12_rate_misestimation.cpp.o.d"
  "bench/fig12_rate_misestimation"
  "bench/fig12_rate_misestimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_rate_misestimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
