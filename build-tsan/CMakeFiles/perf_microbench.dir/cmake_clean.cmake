file(REMOVE_RECURSE
  "CMakeFiles/perf_microbench.dir/bench/perf_microbench.cpp.o"
  "CMakeFiles/perf_microbench.dir/bench/perf_microbench.cpp.o.d"
  "bench/perf_microbench"
  "bench/perf_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
