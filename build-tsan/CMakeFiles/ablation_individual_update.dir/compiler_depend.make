# Empty compiler generated dependencies file for ablation_individual_update.
# This may be replaced when dependencies are built.
