file(REMOVE_RECURSE
  "CMakeFiles/ablation_individual_update.dir/bench/ablation_individual_update.cpp.o"
  "CMakeFiles/ablation_individual_update.dir/bench/ablation_individual_update.cpp.o.d"
  "bench/ablation_individual_update"
  "bench/ablation_individual_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_individual_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
