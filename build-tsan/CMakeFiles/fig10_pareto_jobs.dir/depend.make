# Empty dependencies file for fig10_pareto_jobs.
# This may be replaced when dependencies are built.
