file(REMOVE_RECURSE
  "CMakeFiles/fig10_pareto_jobs.dir/bench/fig10_pareto_jobs.cpp.o"
  "CMakeFiles/fig10_pareto_jobs.dir/bench/fig10_pareto_jobs.cpp.o.d"
  "bench/fig10_pareto_jobs"
  "bench/fig10_pareto_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pareto_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
