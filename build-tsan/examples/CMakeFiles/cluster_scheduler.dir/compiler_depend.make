# Empty compiler generated dependencies file for cluster_scheduler.
# This may be replaced when dependencies are built.
