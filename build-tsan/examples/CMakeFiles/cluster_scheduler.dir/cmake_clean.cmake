file(REMOVE_RECURSE
  "CMakeFiles/cluster_scheduler.dir/cluster_scheduler.cpp.o"
  "CMakeFiles/cluster_scheduler.dir/cluster_scheduler.cpp.o.d"
  "cluster_scheduler"
  "cluster_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
