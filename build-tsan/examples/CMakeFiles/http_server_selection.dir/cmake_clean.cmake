file(REMOVE_RECURSE
  "CMakeFiles/http_server_selection.dir/http_server_selection.cpp.o"
  "CMakeFiles/http_server_selection.dir/http_server_selection.cpp.o.d"
  "http_server_selection"
  "http_server_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_server_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
