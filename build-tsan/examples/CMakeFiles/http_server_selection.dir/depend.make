# Empty dependencies file for http_server_selection.
# This may be replaced when dependencies are built.
