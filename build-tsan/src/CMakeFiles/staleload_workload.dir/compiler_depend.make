# Empty compiler generated dependencies file for staleload_workload.
# This may be replaced when dependencies are built.
