file(REMOVE_RECURSE
  "libstaleload_workload.a"
)
