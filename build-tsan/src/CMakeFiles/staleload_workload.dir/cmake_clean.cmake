file(REMOVE_RECURSE
  "CMakeFiles/staleload_workload.dir/workload/arrival_process.cpp.o"
  "CMakeFiles/staleload_workload.dir/workload/arrival_process.cpp.o.d"
  "CMakeFiles/staleload_workload.dir/workload/bursty_process.cpp.o"
  "CMakeFiles/staleload_workload.dir/workload/bursty_process.cpp.o.d"
  "CMakeFiles/staleload_workload.dir/workload/job_size.cpp.o"
  "CMakeFiles/staleload_workload.dir/workload/job_size.cpp.o.d"
  "CMakeFiles/staleload_workload.dir/workload/trace.cpp.o"
  "CMakeFiles/staleload_workload.dir/workload/trace.cpp.o.d"
  "libstaleload_workload.a"
  "libstaleload_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleload_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
