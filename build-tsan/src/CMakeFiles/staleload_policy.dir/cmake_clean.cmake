file(REMOVE_RECURSE
  "CMakeFiles/staleload_policy.dir/policy/aggressive_li_policy.cpp.o"
  "CMakeFiles/staleload_policy.dir/policy/aggressive_li_policy.cpp.o.d"
  "CMakeFiles/staleload_policy.dir/policy/basic_li_policy.cpp.o"
  "CMakeFiles/staleload_policy.dir/policy/basic_li_policy.cpp.o.d"
  "CMakeFiles/staleload_policy.dir/policy/hybrid_li_policy.cpp.o"
  "CMakeFiles/staleload_policy.dir/policy/hybrid_li_policy.cpp.o.d"
  "CMakeFiles/staleload_policy.dir/policy/k_subset_policy.cpp.o"
  "CMakeFiles/staleload_policy.dir/policy/k_subset_policy.cpp.o.d"
  "CMakeFiles/staleload_policy.dir/policy/li_subset_policy.cpp.o"
  "CMakeFiles/staleload_policy.dir/policy/li_subset_policy.cpp.o.d"
  "CMakeFiles/staleload_policy.dir/policy/policy.cpp.o"
  "CMakeFiles/staleload_policy.dir/policy/policy.cpp.o.d"
  "CMakeFiles/staleload_policy.dir/policy/policy_factory.cpp.o"
  "CMakeFiles/staleload_policy.dir/policy/policy_factory.cpp.o.d"
  "CMakeFiles/staleload_policy.dir/policy/random_policy.cpp.o"
  "CMakeFiles/staleload_policy.dir/policy/random_policy.cpp.o.d"
  "CMakeFiles/staleload_policy.dir/policy/threshold_policy.cpp.o"
  "CMakeFiles/staleload_policy.dir/policy/threshold_policy.cpp.o.d"
  "libstaleload_policy.a"
  "libstaleload_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleload_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
