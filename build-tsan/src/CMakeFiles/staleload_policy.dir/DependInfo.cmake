
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/aggressive_li_policy.cpp" "src/CMakeFiles/staleload_policy.dir/policy/aggressive_li_policy.cpp.o" "gcc" "src/CMakeFiles/staleload_policy.dir/policy/aggressive_li_policy.cpp.o.d"
  "/root/repo/src/policy/basic_li_policy.cpp" "src/CMakeFiles/staleload_policy.dir/policy/basic_li_policy.cpp.o" "gcc" "src/CMakeFiles/staleload_policy.dir/policy/basic_li_policy.cpp.o.d"
  "/root/repo/src/policy/hybrid_li_policy.cpp" "src/CMakeFiles/staleload_policy.dir/policy/hybrid_li_policy.cpp.o" "gcc" "src/CMakeFiles/staleload_policy.dir/policy/hybrid_li_policy.cpp.o.d"
  "/root/repo/src/policy/k_subset_policy.cpp" "src/CMakeFiles/staleload_policy.dir/policy/k_subset_policy.cpp.o" "gcc" "src/CMakeFiles/staleload_policy.dir/policy/k_subset_policy.cpp.o.d"
  "/root/repo/src/policy/li_subset_policy.cpp" "src/CMakeFiles/staleload_policy.dir/policy/li_subset_policy.cpp.o" "gcc" "src/CMakeFiles/staleload_policy.dir/policy/li_subset_policy.cpp.o.d"
  "/root/repo/src/policy/policy.cpp" "src/CMakeFiles/staleload_policy.dir/policy/policy.cpp.o" "gcc" "src/CMakeFiles/staleload_policy.dir/policy/policy.cpp.o.d"
  "/root/repo/src/policy/policy_factory.cpp" "src/CMakeFiles/staleload_policy.dir/policy/policy_factory.cpp.o" "gcc" "src/CMakeFiles/staleload_policy.dir/policy/policy_factory.cpp.o.d"
  "/root/repo/src/policy/random_policy.cpp" "src/CMakeFiles/staleload_policy.dir/policy/random_policy.cpp.o" "gcc" "src/CMakeFiles/staleload_policy.dir/policy/random_policy.cpp.o.d"
  "/root/repo/src/policy/threshold_policy.cpp" "src/CMakeFiles/staleload_policy.dir/policy/threshold_policy.cpp.o" "gcc" "src/CMakeFiles/staleload_policy.dir/policy/threshold_policy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/staleload_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
