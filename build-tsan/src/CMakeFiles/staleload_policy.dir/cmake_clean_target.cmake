file(REMOVE_RECURSE
  "libstaleload_policy.a"
)
