# Empty compiler generated dependencies file for staleload_policy.
# This may be replaced when dependencies are built.
