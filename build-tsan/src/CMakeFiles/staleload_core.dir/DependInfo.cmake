
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggressive_schedule.cpp" "src/CMakeFiles/staleload_core.dir/core/aggressive_schedule.cpp.o" "gcc" "src/CMakeFiles/staleload_core.dir/core/aggressive_schedule.cpp.o.d"
  "/root/repo/src/core/interpreter.cpp" "src/CMakeFiles/staleload_core.dir/core/interpreter.cpp.o" "gcc" "src/CMakeFiles/staleload_core.dir/core/interpreter.cpp.o.d"
  "/root/repo/src/core/ksubset_analysis.cpp" "src/CMakeFiles/staleload_core.dir/core/ksubset_analysis.cpp.o" "gcc" "src/CMakeFiles/staleload_core.dir/core/ksubset_analysis.cpp.o.d"
  "/root/repo/src/core/load_interpretation.cpp" "src/CMakeFiles/staleload_core.dir/core/load_interpretation.cpp.o" "gcc" "src/CMakeFiles/staleload_core.dir/core/load_interpretation.cpp.o.d"
  "/root/repo/src/core/rate_estimator.cpp" "src/CMakeFiles/staleload_core.dir/core/rate_estimator.cpp.o" "gcc" "src/CMakeFiles/staleload_core.dir/core/rate_estimator.cpp.o.d"
  "/root/repo/src/core/sampler.cpp" "src/CMakeFiles/staleload_core.dir/core/sampler.cpp.o" "gcc" "src/CMakeFiles/staleload_core.dir/core/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/staleload_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
