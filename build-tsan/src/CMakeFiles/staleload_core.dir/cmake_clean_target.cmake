file(REMOVE_RECURSE
  "libstaleload_core.a"
)
