file(REMOVE_RECURSE
  "CMakeFiles/staleload_core.dir/core/aggressive_schedule.cpp.o"
  "CMakeFiles/staleload_core.dir/core/aggressive_schedule.cpp.o.d"
  "CMakeFiles/staleload_core.dir/core/interpreter.cpp.o"
  "CMakeFiles/staleload_core.dir/core/interpreter.cpp.o.d"
  "CMakeFiles/staleload_core.dir/core/ksubset_analysis.cpp.o"
  "CMakeFiles/staleload_core.dir/core/ksubset_analysis.cpp.o.d"
  "CMakeFiles/staleload_core.dir/core/load_interpretation.cpp.o"
  "CMakeFiles/staleload_core.dir/core/load_interpretation.cpp.o.d"
  "CMakeFiles/staleload_core.dir/core/rate_estimator.cpp.o"
  "CMakeFiles/staleload_core.dir/core/rate_estimator.cpp.o.d"
  "CMakeFiles/staleload_core.dir/core/sampler.cpp.o"
  "CMakeFiles/staleload_core.dir/core/sampler.cpp.o.d"
  "libstaleload_core.a"
  "libstaleload_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleload_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
