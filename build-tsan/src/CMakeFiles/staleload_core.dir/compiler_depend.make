# Empty compiler generated dependencies file for staleload_core.
# This may be replaced when dependencies are built.
