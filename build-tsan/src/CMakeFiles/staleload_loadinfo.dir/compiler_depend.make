# Empty compiler generated dependencies file for staleload_loadinfo.
# This may be replaced when dependencies are built.
