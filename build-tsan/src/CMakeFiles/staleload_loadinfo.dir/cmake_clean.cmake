file(REMOVE_RECURSE
  "CMakeFiles/staleload_loadinfo.dir/loadinfo/continuous_view.cpp.o"
  "CMakeFiles/staleload_loadinfo.dir/loadinfo/continuous_view.cpp.o.d"
  "CMakeFiles/staleload_loadinfo.dir/loadinfo/delay_distribution.cpp.o"
  "CMakeFiles/staleload_loadinfo.dir/loadinfo/delay_distribution.cpp.o.d"
  "CMakeFiles/staleload_loadinfo.dir/loadinfo/individual_board.cpp.o"
  "CMakeFiles/staleload_loadinfo.dir/loadinfo/individual_board.cpp.o.d"
  "CMakeFiles/staleload_loadinfo.dir/loadinfo/periodic_board.cpp.o"
  "CMakeFiles/staleload_loadinfo.dir/loadinfo/periodic_board.cpp.o.d"
  "libstaleload_loadinfo.a"
  "libstaleload_loadinfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleload_loadinfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
