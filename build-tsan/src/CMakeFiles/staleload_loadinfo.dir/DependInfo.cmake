
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/loadinfo/continuous_view.cpp" "src/CMakeFiles/staleload_loadinfo.dir/loadinfo/continuous_view.cpp.o" "gcc" "src/CMakeFiles/staleload_loadinfo.dir/loadinfo/continuous_view.cpp.o.d"
  "/root/repo/src/loadinfo/delay_distribution.cpp" "src/CMakeFiles/staleload_loadinfo.dir/loadinfo/delay_distribution.cpp.o" "gcc" "src/CMakeFiles/staleload_loadinfo.dir/loadinfo/delay_distribution.cpp.o.d"
  "/root/repo/src/loadinfo/individual_board.cpp" "src/CMakeFiles/staleload_loadinfo.dir/loadinfo/individual_board.cpp.o" "gcc" "src/CMakeFiles/staleload_loadinfo.dir/loadinfo/individual_board.cpp.o.d"
  "/root/repo/src/loadinfo/periodic_board.cpp" "src/CMakeFiles/staleload_loadinfo.dir/loadinfo/periodic_board.cpp.o" "gcc" "src/CMakeFiles/staleload_loadinfo.dir/loadinfo/periodic_board.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/staleload_queueing.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
