file(REMOVE_RECURSE
  "libstaleload_loadinfo.a"
)
