file(REMOVE_RECURSE
  "CMakeFiles/staleload_queueing.dir/queueing/cluster.cpp.o"
  "CMakeFiles/staleload_queueing.dir/queueing/cluster.cpp.o.d"
  "CMakeFiles/staleload_queueing.dir/queueing/fifo_server.cpp.o"
  "CMakeFiles/staleload_queueing.dir/queueing/fifo_server.cpp.o.d"
  "CMakeFiles/staleload_queueing.dir/queueing/load_stats.cpp.o"
  "CMakeFiles/staleload_queueing.dir/queueing/load_stats.cpp.o.d"
  "CMakeFiles/staleload_queueing.dir/queueing/metrics.cpp.o"
  "CMakeFiles/staleload_queueing.dir/queueing/metrics.cpp.o.d"
  "CMakeFiles/staleload_queueing.dir/queueing/theory.cpp.o"
  "CMakeFiles/staleload_queueing.dir/queueing/theory.cpp.o.d"
  "libstaleload_queueing.a"
  "libstaleload_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleload_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
