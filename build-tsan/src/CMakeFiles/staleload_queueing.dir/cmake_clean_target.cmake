file(REMOVE_RECURSE
  "libstaleload_queueing.a"
)
