
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/cluster.cpp" "src/CMakeFiles/staleload_queueing.dir/queueing/cluster.cpp.o" "gcc" "src/CMakeFiles/staleload_queueing.dir/queueing/cluster.cpp.o.d"
  "/root/repo/src/queueing/fifo_server.cpp" "src/CMakeFiles/staleload_queueing.dir/queueing/fifo_server.cpp.o" "gcc" "src/CMakeFiles/staleload_queueing.dir/queueing/fifo_server.cpp.o.d"
  "/root/repo/src/queueing/load_stats.cpp" "src/CMakeFiles/staleload_queueing.dir/queueing/load_stats.cpp.o" "gcc" "src/CMakeFiles/staleload_queueing.dir/queueing/load_stats.cpp.o.d"
  "/root/repo/src/queueing/metrics.cpp" "src/CMakeFiles/staleload_queueing.dir/queueing/metrics.cpp.o" "gcc" "src/CMakeFiles/staleload_queueing.dir/queueing/metrics.cpp.o.d"
  "/root/repo/src/queueing/theory.cpp" "src/CMakeFiles/staleload_queueing.dir/queueing/theory.cpp.o" "gcc" "src/CMakeFiles/staleload_queueing.dir/queueing/theory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/staleload_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
