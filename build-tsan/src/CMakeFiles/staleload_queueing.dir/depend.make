# Empty dependencies file for staleload_queueing.
# This may be replaced when dependencies are built.
