file(REMOVE_RECURSE
  "CMakeFiles/staleload_driver.dir/driver/adaptive.cpp.o"
  "CMakeFiles/staleload_driver.dir/driver/adaptive.cpp.o.d"
  "CMakeFiles/staleload_driver.dir/driver/cli.cpp.o"
  "CMakeFiles/staleload_driver.dir/driver/cli.cpp.o.d"
  "CMakeFiles/staleload_driver.dir/driver/experiment.cpp.o"
  "CMakeFiles/staleload_driver.dir/driver/experiment.cpp.o.d"
  "CMakeFiles/staleload_driver.dir/driver/receiver_driven.cpp.o"
  "CMakeFiles/staleload_driver.dir/driver/receiver_driven.cpp.o.d"
  "CMakeFiles/staleload_driver.dir/driver/svg_plot.cpp.o"
  "CMakeFiles/staleload_driver.dir/driver/svg_plot.cpp.o.d"
  "CMakeFiles/staleload_driver.dir/driver/sweep.cpp.o"
  "CMakeFiles/staleload_driver.dir/driver/sweep.cpp.o.d"
  "CMakeFiles/staleload_driver.dir/driver/table.cpp.o"
  "CMakeFiles/staleload_driver.dir/driver/table.cpp.o.d"
  "CMakeFiles/staleload_driver.dir/driver/update_on_access.cpp.o"
  "CMakeFiles/staleload_driver.dir/driver/update_on_access.cpp.o.d"
  "libstaleload_driver.a"
  "libstaleload_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleload_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
