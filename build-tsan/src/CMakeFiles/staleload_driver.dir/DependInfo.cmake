
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/driver/adaptive.cpp" "src/CMakeFiles/staleload_driver.dir/driver/adaptive.cpp.o" "gcc" "src/CMakeFiles/staleload_driver.dir/driver/adaptive.cpp.o.d"
  "/root/repo/src/driver/cli.cpp" "src/CMakeFiles/staleload_driver.dir/driver/cli.cpp.o" "gcc" "src/CMakeFiles/staleload_driver.dir/driver/cli.cpp.o.d"
  "/root/repo/src/driver/experiment.cpp" "src/CMakeFiles/staleload_driver.dir/driver/experiment.cpp.o" "gcc" "src/CMakeFiles/staleload_driver.dir/driver/experiment.cpp.o.d"
  "/root/repo/src/driver/receiver_driven.cpp" "src/CMakeFiles/staleload_driver.dir/driver/receiver_driven.cpp.o" "gcc" "src/CMakeFiles/staleload_driver.dir/driver/receiver_driven.cpp.o.d"
  "/root/repo/src/driver/svg_plot.cpp" "src/CMakeFiles/staleload_driver.dir/driver/svg_plot.cpp.o" "gcc" "src/CMakeFiles/staleload_driver.dir/driver/svg_plot.cpp.o.d"
  "/root/repo/src/driver/sweep.cpp" "src/CMakeFiles/staleload_driver.dir/driver/sweep.cpp.o" "gcc" "src/CMakeFiles/staleload_driver.dir/driver/sweep.cpp.o.d"
  "/root/repo/src/driver/table.cpp" "src/CMakeFiles/staleload_driver.dir/driver/table.cpp.o" "gcc" "src/CMakeFiles/staleload_driver.dir/driver/table.cpp.o.d"
  "/root/repo/src/driver/update_on_access.cpp" "src/CMakeFiles/staleload_driver.dir/driver/update_on_access.cpp.o" "gcc" "src/CMakeFiles/staleload_driver.dir/driver/update_on_access.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/staleload_policy.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_loadinfo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_queueing.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_runtime.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
