file(REMOVE_RECURSE
  "libstaleload_driver.a"
)
