# Empty dependencies file for staleload_driver.
# This may be replaced when dependencies are built.
