file(REMOVE_RECURSE
  "CMakeFiles/staleload_sim.dir/sim/distributions.cpp.o"
  "CMakeFiles/staleload_sim.dir/sim/distributions.cpp.o.d"
  "CMakeFiles/staleload_sim.dir/sim/histogram.cpp.o"
  "CMakeFiles/staleload_sim.dir/sim/histogram.cpp.o.d"
  "CMakeFiles/staleload_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/staleload_sim.dir/sim/rng.cpp.o.d"
  "CMakeFiles/staleload_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/staleload_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/staleload_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/staleload_sim.dir/sim/stats.cpp.o.d"
  "libstaleload_sim.a"
  "libstaleload_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleload_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
