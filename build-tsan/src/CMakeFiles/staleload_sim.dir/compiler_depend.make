# Empty compiler generated dependencies file for staleload_sim.
# This may be replaced when dependencies are built.
