file(REMOVE_RECURSE
  "libstaleload_sim.a"
)
