file(REMOVE_RECURSE
  "CMakeFiles/staleload_runtime.dir/runtime/thread_pool.cpp.o"
  "CMakeFiles/staleload_runtime.dir/runtime/thread_pool.cpp.o.d"
  "libstaleload_runtime.a"
  "libstaleload_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleload_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
