# Empty compiler generated dependencies file for staleload_runtime.
# This may be replaced when dependencies are built.
