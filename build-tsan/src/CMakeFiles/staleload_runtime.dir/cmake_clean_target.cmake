file(REMOVE_RECURSE
  "libstaleload_runtime.a"
)
