file(REMOVE_RECURSE
  "CMakeFiles/staleload_analysis.dir/analysis/fluid_model.cpp.o"
  "CMakeFiles/staleload_analysis.dir/analysis/fluid_model.cpp.o.d"
  "libstaleload_analysis.a"
  "libstaleload_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleload_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
