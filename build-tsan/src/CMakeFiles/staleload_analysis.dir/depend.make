# Empty dependencies file for staleload_analysis.
# This may be replaced when dependencies are built.
