file(REMOVE_RECURSE
  "libstaleload_analysis.a"
)
