# Empty compiler generated dependencies file for staleload_unit_tests.
# This may be replaced when dependencies are built.
