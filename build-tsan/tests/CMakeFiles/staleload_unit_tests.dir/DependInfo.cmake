
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/aggressive_li_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/aggressive_li_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/aggressive_li_test.cpp.o.d"
  "/root/repo/tests/basic_li_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/basic_li_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/basic_li_test.cpp.o.d"
  "/root/repo/tests/cluster_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/cluster_test.cpp.o.d"
  "/root/repo/tests/distributions_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/distributions_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/distributions_test.cpp.o.d"
  "/root/repo/tests/driver_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/driver_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/driver_test.cpp.o.d"
  "/root/repo/tests/fifo_server_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/fifo_server_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/fifo_server_test.cpp.o.d"
  "/root/repo/tests/fluid_model_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/fluid_model_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/fluid_model_test.cpp.o.d"
  "/root/repo/tests/histogram_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/histogram_test.cpp.o.d"
  "/root/repo/tests/interpreter_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/interpreter_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/interpreter_test.cpp.o.d"
  "/root/repo/tests/ksubset_analysis_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/ksubset_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/ksubset_analysis_test.cpp.o.d"
  "/root/repo/tests/li_policy_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/li_policy_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/li_policy_test.cpp.o.d"
  "/root/repo/tests/load_stats_adaptive_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/load_stats_adaptive_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/load_stats_adaptive_test.cpp.o.d"
  "/root/repo/tests/loadinfo_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/loadinfo_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/loadinfo_test.cpp.o.d"
  "/root/repo/tests/parallel_determinism_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/parallel_determinism_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/parallel_determinism_test.cpp.o.d"
  "/root/repo/tests/policy_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/policy_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/policy_test.cpp.o.d"
  "/root/repo/tests/property_sweep_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/property_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/property_sweep_test.cpp.o.d"
  "/root/repo/tests/rate_estimator_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/rate_estimator_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/rate_estimator_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/sampler_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/sampler_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/sampler_test.cpp.o.d"
  "/root/repo/tests/simulator_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/simulator_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/svg_plot_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/svg_plot_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/svg_plot_test.cpp.o.d"
  "/root/repo/tests/theory_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/theory_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/theory_test.cpp.o.d"
  "/root/repo/tests/thread_pool_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/thread_pool_test.cpp.o.d"
  "/root/repo/tests/trace_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/trace_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/trace_test.cpp.o.d"
  "/root/repo/tests/update_on_access_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/update_on_access_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/update_on_access_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/staleload_unit_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/staleload_unit_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/staleload_driver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_policy.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_loadinfo.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_queueing.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_analysis.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/staleload_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
