file(REMOVE_RECURSE
  "CMakeFiles/staleload_integration_tests.dir/integration_cross_engine_test.cpp.o"
  "CMakeFiles/staleload_integration_tests.dir/integration_cross_engine_test.cpp.o.d"
  "CMakeFiles/staleload_integration_tests.dir/integration_models_test.cpp.o"
  "CMakeFiles/staleload_integration_tests.dir/integration_models_test.cpp.o.d"
  "CMakeFiles/staleload_integration_tests.dir/integration_queueing_test.cpp.o"
  "CMakeFiles/staleload_integration_tests.dir/integration_queueing_test.cpp.o.d"
  "CMakeFiles/staleload_integration_tests.dir/receiver_driven_test.cpp.o"
  "CMakeFiles/staleload_integration_tests.dir/receiver_driven_test.cpp.o.d"
  "staleload_integration_tests"
  "staleload_integration_tests.pdb"
  "staleload_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staleload_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
