# Empty dependencies file for staleload_integration_tests.
# This may be replaced when dependencies are built.
