// Example: trace-driven evaluation (the paper's "more realistic workloads"
// future work). Generates a synthetic diurnal request trace — a slow
// sinusoidal rate swing with heavy-tailed sizes, something no Poisson model
// matches — writes it to a temp file, replays it through the balancer with
// three strategies, and reports mean latency.
//
//   build/examples/trace_replay [jobs]
//
// The interesting twist: during the trace's rush-hour peaks the true arrival
// rate exceeds the long-run average, exactly the regime where LI's
// conservative max-throughput rate estimate earns its keep.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "core/interpreter.h"
#include "loadinfo/periodic_board.h"
#include "queueing/cluster.h"
#include "queueing/metrics.h"
#include "sim/rng.h"
#include "workload/trace.h"

namespace {

constexpr int kServers = 10;
constexpr double kHeartbeat = 4.0;

// Writes a diurnal trace: thinned non-homogeneous Poisson with rate
// base * (1 + 0.6 sin(2 pi t / period)), Bounded-Pareto-ish sizes.
std::string write_trace(long jobs, std::uint64_t seed) {
  const std::string path = "/tmp/staleload_trace.txt";
  std::ofstream out(path);
  stale::sim::Rng rng(seed);
  const double base_rate = 0.8 * kServers;  // long-run 80% load
  const double peak_rate = base_rate * 1.6;
  const double period = 500.0;
  double t = 0.0;
  out << "# synthetic diurnal trace: rate swings +-60% around " << base_rate
      << "\n";
  long written = 0;
  while (written < jobs) {
    // Thinning: candidate events at the peak rate, accepted with
    // probability rate(t) / peak_rate.
    t += -std::log(rng.next_double_open0()) / peak_rate;
    const double rate =
        base_rate * (1.0 + 0.6 * std::sin(2.0 * M_PI * t / period));
    if (rng.next_double() * peak_rate > rate) continue;
    // Pareto(alpha ~ 1.43) size with mean 1 before clipping at 50.
    double size = 0.3 * std::pow(rng.next_double_open0(), -0.7);
    if (size > 50.0) size = 50.0;
    out << t << " " << size << "\n";
    ++written;
  }
  return path;
}

enum class Strategy { kRandom, kGreedy, kBasicLi };

double replay(const std::vector<stale::workload::TraceRecord>& records,
              Strategy strategy) {
  stale::sim::Rng rng(0x7ACE);
  stale::queueing::Cluster cluster(kServers);
  stale::loadinfo::PeriodicBoard board(kServers, kHeartbeat);
  stale::queueing::ResponseMetrics metrics(records.size() / 5);

  stale::core::LoadInterpreter li(stale::core::LoadInterpreter::Options{
      .mode = stale::core::LiMode::kBasic,
      .num_servers = kServers,
      .rate = stale::core::RateSource::conservative_max(kServers),
      .server_rates = {},
  });

  for (const auto& record : records) {
    board.sync(cluster, record.arrival);
    int server = 0;
    switch (strategy) {
      case Strategy::kRandom:
        server = static_cast<int>(rng.next_below(kServers));
        break;
      case Strategy::kGreedy: {
        int best = 1 << 30;
        const auto& loads = board.loads();
        for (int i = 0; i < kServers; ++i) {
          if (loads[static_cast<std::size_t>(i)] < best) {
            best = loads[static_cast<std::size_t>(i)];
            server = i;
          }
        }
        break;
      }
      case Strategy::kBasicLi:
        li.report_loads(std::span<const int>(board.loads()),
                        board.age(record.arrival));
        server = li.pick(rng);
        break;
    }
    const double finish = cluster.assign(record.arrival, server, record.size);
    metrics.record(finish - record.arrival);
  }
  return metrics.mean_response();
}

}  // namespace

int main(int argc, char** argv) {
  const long jobs = argc > 1 ? std::atol(argv[1]) : 200'000;
  const std::string path = write_trace(jobs, 0xD1A1);
  const auto records = stale::workload::load_trace(path);
  std::printf(
      "Trace replay: %zu jobs from %s (diurnal rate swing, heavy-ish sizes)\n"
      "%d servers, heartbeat every %.0f time units\n\n",
      records.size(), path.c_str(), kServers, kHeartbeat);
  std::printf("%-26s  %s\n", "strategy", "mean response");
  std::printf("%-26s  %.3f\n", "uniform-random",
              replay(records, Strategy::kRandom));
  std::printf("%-26s  %.3f\n", "shortest-apparent-queue",
              replay(records, Strategy::kGreedy));
  std::printf("%-26s  %.3f\n", "basic-li (rate=capacity)",
              replay(records, Strategy::kBasicLi));
  std::printf(
      "\nThe trace's rate is non-stationary, yet interpreting heartbeat age\n"
      "against the cluster's capacity still beats both extremes.\n");
  return 0;
}
