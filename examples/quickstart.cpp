// Quickstart: interpreting a stale load report with the LoadInterpreter
// facade — the 60-second tour of the library's public API.
//
//   build/examples/quickstart
//
// A dispatcher knows each server's queue length as of some moments ago. The
// naive move ("send to the minimum") causes the herd effect; ignoring the
// report wastes information. LoadInterpreter turns (report, age, arrival
// rate) into a probability distribution that smoothly interpolates between
// greedy (fresh report) and uniform (ancient report).
#include <cstdio>
#include <span>
#include <vector>

#include "core/interpreter.h"
#include "sim/rng.h"

namespace {

void show(const char* label, const std::vector<double>& p) {
  std::printf("%-28s", label);
  for (double v : p) std::printf("  %5.3f", v);
  std::printf("\n");
}

}  // namespace

int main() {
  using stale::core::LiMode;
  using stale::core::LoadInterpreter;
  using stale::core::RateSource;

  // Four servers; the last report said their queue lengths were 0, 2, 5, 9.
  const std::vector<int> report = {0, 2, 5, 9};

  // The cluster serves ~4 jobs per time unit and we expect arrivals at about
  // that rate (the paper's advice: when unsure, assume the maximum
  // throughput — overestimating is nearly free, underestimating is not).
  LoadInterpreter li(LoadInterpreter::Options{
      .mode = LiMode::kBasic,
      .num_servers = 4,
      .rate = RateSource::conservative_max(4.0),
      .server_rates = {},
  });

  std::printf("reported loads:               ");
  for (int b : report) std::printf("  %5d", b);
  std::printf("\n\n");

  // The same report, interpreted at different ages.
  for (double age : {0.0, 1.0, 4.0, 16.0, 64.0}) {
    li.report_loads(std::span<const int>(report), age);
    char label[64];
    std::snprintf(label, sizeof(label), "p(server) at age %5.1f:", age);
    show(label, li.probabilities());
  }

  std::printf(
      "\nFresh -> everything to the idle server; ancient -> uniform.\n"
      "In between, the share of each server exactly levels the expected\n"
      "queue lengths by 'now' (paper Eqs. 2-4).\n\n");

  // Sampling a destination for the next request:
  stale::sim::Rng rng(42);
  li.report_loads(std::span<const int>(report), 2.0);
  std::printf("ten picks at age 2.0: ");
  for (int i = 0; i < 10; ++i) std::printf(" %d", li.pick(rng));
  std::printf("\n");
  return 0;
}
