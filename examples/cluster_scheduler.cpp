// Example: an LSF/DQS-style batch scheduler for a heterogeneous workstation
// cluster (the paper's Section 1 motivation: "production load sharing
// programs such as LSF or DQS").
//
//   build/examples/cluster_scheduler [jobs]
//
// Nodes heartbeat their run-queue lengths every HEARTBEAT seconds to the
// master (a periodic bulletin board). Node speeds differ (two fast, four
// standard, two slow). The master routes each submitted job with one of:
//   - shortest-apparent-queue (what naive schedulers do),
//   - uniform random,
//   - rate-weighted Basic LI via LoadInterpreter, with the arrival rate
//     *learned online* by an EWMA estimator rather than configured.
// Midway through, a flash crowd doubles the submission rate — the estimator
// adapts, and LI keeps the slow nodes from drowning.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "core/interpreter.h"
#include "loadinfo/periodic_board.h"
#include "queueing/cluster.h"
#include "queueing/metrics.h"
#include "sim/rng.h"

namespace {

const std::vector<double> kNodeSpeeds = {2.0, 2.0, 1.0, 1.0,
                                         1.0, 1.0, 0.5, 0.5};  // total 9
constexpr double kHeartbeat = 6.0;       // seconds between load reports
constexpr double kBaseLoad = 0.55;       // offered load before the crowd
constexpr double kCrowdLoad = 0.85;      // offered load during the crowd

enum class Router { kShortestQueue, kRandom, kWeightedLi };

const char* router_name(Router r) {
  switch (r) {
    case Router::kShortestQueue:
      return "shortest-apparent-queue";
    case Router::kRandom:
      return "uniform-random";
    case Router::kWeightedLi:
      return "weighted-basic-li (ewma rate)";
  }
  return "?";
}

double run(Router router, long jobs, std::uint64_t seed) {
  const int n = static_cast<int>(kNodeSpeeds.size());
  double capacity = 0.0;
  for (double c : kNodeSpeeds) capacity += c;

  stale::sim::Rng rng(seed);
  stale::queueing::Cluster cluster(kNodeSpeeds, 0.0);
  stale::loadinfo::PeriodicBoard board(n, kHeartbeat);
  stale::queueing::ResponseMetrics metrics(
      static_cast<std::uint64_t>(jobs / 5));

  stale::core::LoadInterpreter li(stale::core::LoadInterpreter::Options{
      .mode = stale::core::LiMode::kBasic,
      .num_servers = n,
      // Learn the submission rate online; start from full capacity (the
      // conservative prior the paper recommends).
      .rate = stale::core::RateSource::ewma(/*time_constant=*/30.0,
                                            /*initial_rate=*/capacity),
      .server_rates = kNodeSpeeds,
  });

  double t = 0.0;
  const double crowd_start_job = 0.5 * static_cast<double>(jobs);
  for (long job = 0; job < jobs; ++job) {
    const double offered =
        static_cast<double>(job) >= crowd_start_job ? kCrowdLoad : kBaseLoad;
    t += -std::log(rng.next_double_open0()) / (offered * capacity);
    board.sync(cluster, t);

    int node = 0;
    switch (router) {
      case Router::kShortestQueue: {
        int best = 1 << 30;
        const auto& loads = board.loads();
        for (int i = 0; i < n; ++i) {
          if (loads[static_cast<std::size_t>(i)] < best) {
            best = loads[static_cast<std::size_t>(i)];
            node = i;
          }
        }
        break;
      }
      case Router::kRandom:
        node = static_cast<int>(rng.next_below(kNodeSpeeds.size()));
        break;
      case Router::kWeightedLi:
        li.on_arrival(t);  // feeds the EWMA rate estimator
        li.report_loads(std::span<const int>(board.loads()), board.age(t));
        node = li.pick(rng);
        break;
    }

    const double work = -std::log(rng.next_double_open0());  // mean 1 cpu-sec
    const double finish = cluster.assign(t, node, work);
    metrics.record(finish - t);
  }
  return metrics.mean_response();
}

}  // namespace

int main(int argc, char** argv) {
  const long jobs = argc > 1 ? std::atol(argv[1]) : 200'000;
  std::printf(
      "Batch cluster: 8 nodes (speeds 2x,2x,1x,1x,1x,1x,0.5x,0.5x), "
      "heartbeat every %.0fs,\n%ld jobs; offered load steps %.0f%% -> %.0f%% "
      "halfway (flash crowd)\n\n",
      kHeartbeat, jobs, kBaseLoad * 100, kCrowdLoad * 100);
  std::printf("%-32s  %s\n", "router", "mean turnaround (cpu-seconds)");
  for (Router router :
       {Router::kShortestQueue, Router::kRandom, Router::kWeightedLi}) {
    double total = 0.0;
    const int trials = 3;
    for (int trial = 0; trial < trials; ++trial) {
      total += run(router, jobs, 0xC1u + static_cast<std::uint64_t>(trial));
    }
    std::printf("%-32s  %.3f\n", router_name(router), total / trials);
  }
  std::printf(
      "\nShortest-apparent-queue herds onto whichever node reported idle at\n"
      "the last heartbeat; uniform random drowns the half-speed nodes; the\n"
      "interpreter — knowing report age, learned arrival rate, and node\n"
      "speeds — does neither.\n");
  return 0;
}
