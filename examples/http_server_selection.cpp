// Example: wide-area HTTP server selection (the paper's Section 3.2
// motivation — picking a replica of a web service when load information only
// arrives piggybacked on responses, so it is stale by one think time).
//
//   build/examples/http_server_selection [requests]
//
// Built directly on the generic event kernel (sim::Simulator): a population
// of browsers issues requests to 8 mirrors; each response carries the
// mirrors' queue lengths; each browser's next request is routed with the
// strategy under test. Strategies: pick-random, pick-apparent-minimum
// (greedy), and Basic LI via LoadInterpreter. Greedy herding is milder here
// than under a shared bulletin board (clients are desynchronized) but LI
// still wins — the paper's Figure 8 story, told end-to-end through the
// public API.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/interpreter.h"
#include "queueing/cluster.h"
#include "queueing/metrics.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace {

constexpr int kMirrors = 8;
constexpr double kLoadFactor = 0.9;    // offered load per mirror
constexpr double kThinkTime = 12.0;    // mean browser think time (staleness!)
const int kBrowsers =
    static_cast<int>(kLoadFactor * kMirrors * kThinkTime);  // ~ lambda*n*T

enum class Strategy { kRandom, kGreedy, kBasicLi };

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kRandom:
      return "pick-random";
    case Strategy::kGreedy:
      return "pick-apparent-minimum";
    case Strategy::kBasicLi:
      return "basic-load-interpretation";
  }
  return "?";
}

struct Browser {
  std::vector<int> snapshot = std::vector<int>(kMirrors, 0);
  double snapshot_time = 0.0;
};

class WanSimulation {
 public:
  WanSimulation(Strategy strategy, long requests, std::uint64_t seed)
      : strategy_(strategy),
        requests_(requests),
        rng_(seed),
        cluster_(kMirrors),
        metrics_(static_cast<std::uint64_t>(requests / 5)),
        browsers_(static_cast<std::size_t>(kBrowsers)),
        li_(stale::core::LoadInterpreter::Options{
            .mode = stale::core::LiMode::kBasic,
            .num_servers = kMirrors,
            // The paper's conservative rule: believe the aggregate capacity.
            .rate = stale::core::RateSource::conservative_max(kMirrors),
            .server_rates = {},
        }) {}

  double run() {
    for (int b = 0; b < kBrowsers; ++b) {
      schedule_browser(b, think_time());
    }
    sim_.run();
    return metrics_.mean_response();
  }

 private:
  double think_time() {
    // Aggregate request rate = browsers / gap = loadFactor * mirrors.
    const double gap = static_cast<double>(kBrowsers) /
                       (kLoadFactor * kMirrors);
    return -gap * std::log(rng_.next_double_open0());
  }

  void schedule_browser(int browser, double delay) {
    if (issued_ >= requests_) return;
    ++issued_;
    sim_.schedule_after(delay, [this, browser](stale::sim::Simulator& s) {
      issue_request(s, browser);
    });
  }

  void issue_request(stale::sim::Simulator& s, int browser) {
    Browser& me = browsers_[static_cast<std::size_t>(browser)];
    const double age = s.now() - me.snapshot_time;

    int mirror = 0;
    switch (strategy_) {
      case Strategy::kRandom:
        mirror = static_cast<int>(rng_.next_below(kMirrors));
        break;
      case Strategy::kGreedy: {
        int best = 1 << 30;
        for (int i = 0; i < kMirrors; ++i) {
          const int load = me.snapshot[static_cast<std::size_t>(i)];
          if (load < best) {
            best = load;
            mirror = i;
          }
        }
        break;
      }
      case Strategy::kBasicLi:
        li_.report_loads(std::span<const int>(me.snapshot), age);
        mirror = li_.pick(rng_);
        break;
    }

    cluster_.advance_to(s.now());
    const double service = -std::log(rng_.next_double_open0());
    const double departure = cluster_.assign(s.now(), mirror, service);
    metrics_.record(departure - s.now());

    // The response (at `departure`) carries the mirrors' loads as of the
    // dispatch instant; the browser thinks, then asks again.
    const auto loads = cluster_.loads();
    me.snapshot.assign(loads.begin(), loads.end());
    me.snapshot_time = s.now();
    schedule_browser(browser, (departure - s.now()) + think_time());
  }

  Strategy strategy_;
  long requests_;
  long issued_ = 0;
  stale::sim::Rng rng_;
  stale::sim::Simulator sim_;
  stale::queueing::Cluster cluster_;
  stale::queueing::ResponseMetrics metrics_;
  std::vector<Browser> browsers_;
  stale::core::LoadInterpreter li_;
};

}  // namespace

int main(int argc, char** argv) {
  const long requests = argc > 1 ? std::atol(argv[1]) : 150'000;
  std::printf(
      "WAN server selection: %d mirrors, %d browsers, think time ~%.0f "
      "service times, %ld requests per strategy\n\n",
      kMirrors, kBrowsers, kThinkTime, requests);
  std::printf("%-28s  %s\n", "strategy", "mean latency (service times)");
  for (Strategy strategy :
       {Strategy::kRandom, Strategy::kGreedy, Strategy::kBasicLi}) {
    double total = 0.0;
    const int trials = 3;
    for (int trial = 0; trial < trials; ++trial) {
      WanSimulation simulation(strategy, requests,
                               0x8EED + static_cast<std::uint64_t>(trial));
      total += simulation.run();
    }
    std::printf("%-28s  %.3f\n", strategy_name(strategy), total / trials);
  }
  std::printf(
      "\nInterpretation beats both extremes even though every browser's\n"
      "load picture is a full think-time old.\n");
  return 0;
}
